/**
 * @file
 * Tests for the APMU entry-hysteresis knob (core/apc_config.h): zero
 * (the paper's design) must be behaviour-identical to before, and a
 * nonzero setting must rate-limit re-entries without wedging the FSM.
 */

#include <gtest/gtest.h>

#include "soc/soc.h"

namespace apc::core {
namespace {

using sim::kMs;
using sim::kNs;
using sim::kUs;

std::unique_ptr<soc::Soc>
makeApc(sim::Simulation &s, sim::Tick hysteresis)
{
    auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cpc1a);
    cfg.apc.entryHysteresis = hysteresis;
    auto soc = std::make_unique<soc::Soc>(s, cfg,
                                          soc::PackagePolicy::Cpc1a);
    for (std::size_t i = 0; i < soc->numCores(); ++i)
        soc->core(i).release();
    return soc;
}

TEST(Hysteresis, ZeroReentersImmediately)
{
    sim::Simulation s;
    auto soc = makeApc(s, 0);
    s.runUntil(10 * kUs);
    ASSERT_EQ(soc->apmu()->state(), Apmu::State::Pc1a);
    soc->link(4).transfer(100 * kNs, nullptr);
    s.runUntil(20 * kUs);
    EXPECT_EQ(soc->apmu()->state(), Apmu::State::Pc1a);
    EXPECT_EQ(soc->apmu()->pc1aEntries(), 2u);
}

TEST(Hysteresis, DelaysReentryByConfiguredTime)
{
    sim::Simulation s;
    auto soc = makeApc(s, 50 * kUs);
    s.runUntil(10 * kUs);
    ASSERT_EQ(soc->apmu()->state(), Apmu::State::Pc1a);
    soc->link(4).transfer(100 * kNs, nullptr);
    // Shortly after the wake: back in ACC1, but rate-limited.
    s.runUntil(15 * kUs);
    EXPECT_EQ(soc->apmu()->state(), Apmu::State::Acc1);
    EXPECT_EQ(soc->apmu()->pc1aEntries(), 1u);
    // After the hysteresis window it re-enters on its own.
    s.runUntil(100 * kUs);
    EXPECT_EQ(soc->apmu()->state(), Apmu::State::Pc1a);
    EXPECT_EQ(soc->apmu()->pc1aEntries(), 2u);
}

TEST(Hysteresis, RateLimitsEntriesUnderWakeStorm)
{
    auto storm = [](sim::Tick hysteresis) {
        sim::Simulation s;
        auto soc = makeApc(s, hysteresis);
        std::function<void()> poke = [&s, &soc, &poke] {
            soc->link(4).transfer(100 * kNs, nullptr);
            s.after(20 * kUs, poke);
        };
        s.after(20 * kUs, poke);
        s.runUntil(5 * kMs);
        return soc->apmu()->pc1aEntries();
    };
    const auto without = storm(0);
    const auto with = storm(100 * kUs);
    EXPECT_GT(without, 4 * with);
    EXPECT_GT(with, 0u);
}

TEST(Hysteresis, CoreWakeDuringWindowStillGoesToPc0)
{
    sim::Simulation s;
    auto soc = makeApc(s, 200 * kUs);
    s.runUntil(10 * kUs);
    soc->link(4).transfer(100 * kNs, nullptr); // IO wake -> ACC1, gated
    s.runUntil(15 * kUs);
    ASSERT_EQ(soc->apmu()->state(), Apmu::State::Acc1);
    bool woke = false;
    soc->core(0).requestWake([&] { woke = true; });
    s.runUntil(30 * kUs);
    EXPECT_TRUE(woke);
    EXPECT_EQ(soc->apmu()->state(), Apmu::State::Pc0);
    EXPECT_TRUE(soc->fabricReady());
    // And the stale hysteresis timer must not fire a bogus entry.
    s.runUntil(400 * kUs);
    EXPECT_EQ(soc->apmu()->state(), Apmu::State::Pc0);
}

} // namespace
} // namespace apc::core
