/**
 * @file
 * Sharded fleet-engine tests: layout invariants, and the determinism
 * contract at scale — identical FleetReport CSV bytes for any
 * (thread count x shard size) combination, plus request-conservation
 * and NIC/fabric accounting with ~1k servers.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/fleet_sim.h"
#include "fleet/shard.h"
#include "stats/reduce.h"

namespace apc::fleet {
namespace {

using sim::kMs;
using sim::kUs;

// ------------------------------------------------------------ shard layout

TEST(ShardLayout, CoversAllServersContiguously)
{
    for (std::size_t servers : {1ul, 2ul, 7ul, 64ul, 100ul, 1000ul})
        for (std::size_t size : {1ul, 3ul, 8ul, 64ul, 2000ul}) {
            const auto l = ShardLayout::make(servers, size, 4);
            ASSERT_GT(l.numShards, 0u);
            std::size_t covered = 0;
            for (std::size_t s = 0; s < l.numShards; ++s) {
                ASSERT_EQ(l.begin(s), covered);
                ASSERT_GT(l.end(s), l.begin(s));
                ASSERT_LE(l.end(s) - l.begin(s), l.shardSize);
                for (std::size_t i = l.begin(s); i < l.end(s); ++i)
                    ASSERT_EQ(l.shardOf(i), s);
                covered = l.end(s);
            }
            ASSERT_EQ(covered, servers);
        }
}

TEST(ShardLayout, AutoSizeScalesWithThreadsAndCaps)
{
    // ~4 shards per worker...
    const auto a = ShardLayout::make(1024, 0, 8);
    EXPECT_EQ(a.shardSize, 32u);
    EXPECT_EQ(a.numShards, 32u);
    // ...but never more than 64 servers per shard...
    const auto b = ShardLayout::make(10000, 0, 8);
    EXPECT_EQ(b.shardSize, 64u);
    // ...and never zero-sized.
    const auto c = ShardLayout::make(3, 0, 16);
    EXPECT_EQ(c.shardSize, 1u);
    EXPECT_EQ(c.numShards, 3u);
}

TEST(StagedEventOrder, MatchesGlobalSortOrder)
{
    // The merge comparator must impose the (time, server, id) total
    // order the pre-shard engine's global sort used.
    EXPECT_TRUE(stagedBefore({1, 5, 9}, {2, 0, 0}));
    EXPECT_TRUE(stagedBefore({1, 4, 9}, {1, 5, 0}));
    EXPECT_TRUE(stagedBefore({1, 5, 3}, {1, 5, 9}));
    EXPECT_FALSE(stagedBefore({1, 5, 9}, {1, 5, 9}));
}

// ------------------------------------------------------------ reduceFixed

TEST(ReduceFixed, ShapeIsIndependentOfParallelism)
{
    // Summing doubles is order-sensitive; with a fixed leaf width the
    // reduction must give bit-equal results for any "worker count"
    // (here: plain sequential pfor vs chunk-reversed pfor).
    std::vector<double> xs(1000);
    for (std::size_t i = 0; i < xs.size(); ++i)
        xs[i] = 1.0 / static_cast<double>(i + 3);
    const auto accum = [&xs](double &acc, std::size_t i) {
        acc += xs[i];
    };
    const auto merge = [](double &acc, const double &o) { acc += o; };
    const double fwd = stats::reduceFixed(
        xs.size(), 64, 0.0, accum, merge,
        [](std::size_t n, auto &&fn) {
            for (std::size_t l = 0; l < n; ++l)
                fn(l);
        });
    const double rev = stats::reduceFixed(
        xs.size(), 64, 0.0, accum, merge,
        [](std::size_t n, auto &&fn) {
            for (std::size_t l = n; l-- > 0;)
                fn(l); // leaves evaluated in reverse "schedule"
        });
    EXPECT_EQ(fwd, rev); // bit-equal, not just approximately
    // Sanity: the reduction really sums everything.
    double ref = 0.0;
    for (double x : xs)
        ref += x;
    EXPECT_NEAR(fwd, ref, 1e-9);
}

// ----------------------------------------------- determinism grid at scale

FleetConfig
bigFleet(std::size_t servers, unsigned threads, std::size_t shard_size)
{
    FleetConfig fc;
    fc.numServers = servers;
    fc.policy = soc::PackagePolicy::Cpc1a;
    fc.workload = workload::WorkloadConfig::memcachedEtc(0);
    fc.dispatch = DispatchKind::LeastOutstanding;
    fc.traffic.arrivalKind = workload::ArrivalKind::Poisson;
    fc.traffic.qps = fc.workload.qpsForUtilization(
        0.05, static_cast<int>(servers) * 10);
    fc.traffic.fanout = {0.05, 4}; // exercise exclusion routing
    fc.sloUs = 10000.0;
    fc.warmup = 4 * kMs;
    fc.duration = 16 * kMs;
    fc.seed = 77;
    fc.threads = threads;
    fc.shardSize = shard_size;
    return fc;
}

TEST(FleetShard, ReportBytesIdenticalAcrossThreadsAndShardSizes)
{
    // The determinism contract, verified at the advertised scale: 1k
    // servers, CSV rows compared byte-for-byte across thread counts and
    // shard sizes (including the degenerate one-server-per-shard and
    // one-big-shard layouts).
    constexpr std::size_t kServers = 1024;
    struct Point
    {
        unsigned threads;
        std::size_t shardSize;
    };
    const std::vector<Point> grid = {
        {1, 0},  // auto layout, inline execution
        {2, 7},  // ragged shard boundary
        {8, 64}, // the auto cap, oversubscribed workers
        {8, 1},  // one server per shard
    };
    std::string reference;
    std::uint64_t ref_dispatched = 0;
    for (const Point &p : grid) {
        FleetSim fleet(bigFleet(kServers, p.threads, p.shardSize));
        const FleetReport rep = fleet.run();
        ASSERT_GT(rep.dispatched, 1000u);
        // Conservation at scale: every routed replica is accounted for.
        EXPECT_EQ(rep.replicasDispatched, rep.serversAccepted);
        EXPECT_EQ(rep.replicasDispatched,
                  rep.serversCompleted + rep.serversOutstanding);
        EXPECT_EQ(rep.inFlightAtEnd, 0u);
        EXPECT_EQ(rep.dispatched, rep.completed);
        const std::string row = rep.csvRow();
        if (reference.empty()) {
            reference = row;
            ref_dispatched = rep.dispatched;
        } else {
            EXPECT_EQ(row, reference)
                << "threads=" << p.threads
                << " shardSize=" << p.shardSize;
            EXPECT_EQ(rep.dispatched, ref_dispatched);
        }
    }
}

TEST(FleetShard, NicFabricAccountingIdenticalAcrossLayouts)
{
    // Fabric + NIC mode at scale: the shared-link transit order and the
    // NIC-drop retransmit path must survive resharding bit-for-bit,
    // and the network accounting identities must hold exactly.
    constexpr std::size_t kServers = 256;
    auto make = [](unsigned threads, std::size_t shard_size) {
        FleetConfig fc;
        fc.numServers = kServers;
        fc.policy = soc::PackagePolicy::Cpc1a;
        fc.workload = workload::WorkloadConfig::memcachedEtc(0);
        fc.dispatch = DispatchKind::LeastOutstanding;
        fc.traffic.arrivalKind = workload::ArrivalKind::Mmpp;
        fc.traffic.burstiness = 5.0;
        fc.traffic.qps = fc.workload.qpsForUtilization(
            0.15, static_cast<int>(kServers) * 10);
        fc.sloUs = 10000.0;
        fc.warmup = 4 * kMs;
        fc.duration = 16 * kMs;
        fc.seed = 31;
        fc.fabric.enabled = true;
        // Tight buffers force drops, retransmits and losses through
        // the k-way-merged drain paths.
        fc.fabric.edge.queuePackets = 3;
        fc.fabric.core.queuePackets = 24;
        fc.fabric.rto = 300 * kUs;
        fc.fabric.maxTries = 2;
        fc.nic.enabled = true;
        fc.nic.rxUsecs = 20 * kUs;
        fc.threads = threads;
        fc.shardSize = shard_size;
        return fc;
    };

    std::string reference;
    for (const auto &[threads, shard] :
         std::vector<std::pair<unsigned, std::size_t>>{
             {1, 0}, {8, 5}, {2, 64}}) {
        const FleetReport rep = FleetSim(make(threads, shard)).run();
        ASSERT_GT(rep.dispatched, 500u);
        // Per-link conservation is exact, even with drops in flight.
        EXPECT_EQ(rep.fabricStats.enqueued,
                  rep.fabricStats.delivered + rep.fabricStats.dropped);
        // Every measured request either completed or was reported lost.
        EXPECT_EQ(rep.inFlightAtEnd, 0u);
        EXPECT_EQ(rep.dispatched, rep.completed + rep.lostRequests);
        EXPECT_GT(rep.nicInterrupts, 0u);
        const std::string row = rep.csvRow();
        if (reference.empty())
            reference = row;
        else
            EXPECT_EQ(row, reference)
                << "threads=" << threads << " shardSize=" << shard;
    }
}

} // namespace
} // namespace apc::fleet
