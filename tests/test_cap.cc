/**
 * @file
 * Unit tests for the power capping & oversubscription subsystem (cap/).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cap/budget.h"
#include "cap/power_cap.h"
#include "fleet/fleet_sim.h"
#include "server/server_sim.h"

namespace apc::cap {
namespace {

using sim::kMs;
using sim::kUs;

// ----------------------------------------------------- controller (unit)

CapConfig
testCfg(CapActuator act, double limit)
{
    CapConfig c;
    c.enabled = true;
    c.actuator = act;
    c.limitW = limit;
    return c;
}

TEST(PowerCapController, UncappedNeverActuates)
{
    PowerCapController pc(testCfg(CapActuator::Hybrid, 0.0), 6, 4);
    for (int i = 0; i < 50; ++i) {
        const auto act = pc.onSample(i * 500 * kUs, 100.0);
        EXPECT_EQ(act.pstateClamp, SIZE_MAX);
        EXPECT_DOUBLE_EQ(act.idleDuty, 0.0);
    }
    EXPECT_EQ(pc.violations(), 0u);
}

TEST(PowerCapController, IntegralWindsUpToFullAuthority)
{
    // Power pinned far above the limit: authority must saturate, and
    // each actuator must reach its strongest setting.
    PowerCapController dvfs(testCfg(CapActuator::DvfsOnly, 20.0), 6, 4);
    PowerCapController idle(testCfg(CapActuator::IdleInject, 20.0), 6, 4);
    CapActuation ad, ai;
    for (int i = 0; i < 100; ++i) {
        const sim::Tick now = i * 500 * kUs;
        ad = dvfs.onSample(now, 60.0);
        ai = idle.onSample(now, 60.0);
    }
    EXPECT_EQ(ad.pstateClamp, 0u); // slowest table entry
    EXPECT_DOUBLE_EQ(ad.idleDuty, 0.0);
    EXPECT_EQ(ai.pstateClamp, SIZE_MAX);
    EXPECT_NEAR(ai.idleDuty, idle.limitW() > 0 ? 0.85 : 0.0, 1e-9);
    EXPECT_DOUBLE_EQ(dvfs.level(), 1.0);
}

TEST(PowerCapController, HybridUsesDvfsFirstThenInjects)
{
    auto cfg = testCfg(CapActuator::Hybrid, 40.0);
    cfg.hybridDvfsShare = 0.5;
    PowerCapController pc(cfg, 6, 4);
    // One mild sample: small authority => clamp moves, no injection.
    auto act = pc.onSample(0, 44.0);
    EXPECT_LT(act.pstateClamp, 5u);
    EXPECT_DOUBLE_EQ(act.idleDuty, 0.0);
    // Sustained overshoot: clamp bottoms out, injection ramps.
    for (int i = 1; i < 100; ++i)
        act = pc.onSample(i * 500 * kUs, 60.0);
    EXPECT_EQ(act.pstateClamp, 0u);
    EXPECT_GT(act.idleDuty, 0.5);
}

TEST(PowerCapController, BacksOffWhenUnderLimit)
{
    PowerCapController pc(testCfg(CapActuator::IdleInject, 40.0), 6, 4);
    for (int i = 0; i < 50; ++i)
        pc.onSample(i * 500 * kUs, 60.0);
    EXPECT_GT(pc.level(), 0.9);
    for (int i = 50; i < 200; ++i)
        pc.onSample(i * 500 * kUs, 20.0);
    EXPECT_DOUBLE_EQ(pc.level(), 0.0);
    EXPECT_DOUBLE_EQ(pc.actuation().idleDuty, 0.0);
}

TEST(PowerCapController, EmergencyCutFeedsForward)
{
    // Converged at a loose limit; an emergency retarget far below the
    // current draw must raise authority immediately (before the next
    // sample), not after the integral winds up.
    PowerCapController pc(testCfg(CapActuator::IdleInject, 100.0), 6, 4);
    for (int i = 0; i < 20; ++i)
        pc.onSample(i * 500 * kUs, 50.0);
    EXPECT_DOUBLE_EQ(pc.level(), 0.0);
    pc.setLimit(30.0, 20 * 500 * kUs);
    EXPECT_GT(pc.actuation().idleDuty, 0.3);
}

TEST(PowerCapController, ViolationAccountingRespectsSettle)
{
    auto cfg = testCfg(CapActuator::IdleInject, 40.0);
    cfg.settleTime = 10 * kMs;
    PowerCapController pc(cfg, 6, 4);
    pc.setLimit(35.0, 0); // tighten at t=0 => grace until 10 ms
    for (int i = 0; i <= 10; ++i)
        pc.onSample(i * 1 * kMs, 60.0); // only t=10ms is settled
    EXPECT_EQ(pc.samples(), 1u); // only the t=10ms sample settled
    EXPECT_EQ(pc.violations(), 1u);
    // Loosening must not restart the grace period.
    pc.setLimit(36.0, 11 * kMs);
    pc.onSample(12 * kMs, 60.0);
    EXPECT_EQ(pc.samples(), 2u);
}

// ------------------------------------------------------ allocator (unit)

BudgetConfig
rackCfg(double oversub, std::size_t n)
{
    BudgetConfig b;
    b.enabled = true;
    b.serverNameplateW = 60.0;
    b.minServerW = 20.0;
    b.headroomW = 2.0;
    b.oversubscription = oversub;
    (void)n;
    return b;
}

TEST(BudgetAllocator, AllocationsRespectBudgetFloorsAndNameplate)
{
    BudgetAllocator a(rackCfg(1.5, 4), 4);
    EXPECT_DOUBLE_EQ(a.nominalRackBudgetW(), 4 * 60.0 / 1.5);
    const auto alloc = a.allocate(0, {50.0, 30.0, 10.0, 0.0});
    double sum = 0.0;
    for (std::size_t i = 0; i < alloc.size(); ++i) {
        EXPECT_GE(alloc[i], 20.0 - 1e-9) << i;
        EXPECT_LE(alloc[i], 60.0 + 1e-9) << i;
        sum += alloc[i];
    }
    EXPECT_LE(sum, a.nominalRackBudgetW() + 1e-6);
    // Demand-driven: the busy server wins more than the idle one.
    EXPECT_GT(alloc[0], alloc[2]);
    EXPECT_GT(alloc[0], alloc[3]);
}

TEST(BudgetAllocator, SurplusRedistributedToTheHungry)
{
    // Two idle servers free their share; the two busy ones split it.
    BudgetAllocator a(rackCfg(1.2, 4), 4);
    const double budget = a.nominalRackBudgetW(); // 200 W
    const auto alloc = a.allocate(0, {58.0, 58.0, 0.0, 0.0});
    // Idle servers sit at floor + headroom-ish; busy ones take the rest
    // up to their want (58 + 2 headroom = 60 = nameplate).
    EXPECT_NEAR(alloc[0], 60.0, 1.0);
    EXPECT_NEAR(alloc[1], 60.0, 1.0);
    EXPECT_LT(alloc[2], 45.0);
    EXPECT_LE(alloc[0] + alloc[1] + alloc[2] + alloc[3], budget + 1e-6);
}

TEST(BudgetAllocator, PriorityWeightsSkewTheSplit)
{
    auto cfg = rackCfg(1.5, 2);
    cfg.weights = {3.0, 1.0};
    BudgetAllocator a(cfg, 2);
    // Both want far more than the budget can give.
    const auto alloc = a.allocate(0, {60.0, 60.0});
    EXPECT_GT(alloc[0], alloc[1]);
    // Above the shared floor, the grant follows the 3:1 weights.
    EXPECT_NEAR((alloc[0] - 20.0) / (alloc[1] - 20.0), 3.0, 0.05);
}

TEST(BudgetAllocator, EmergencyScalesFloorsUnderBreakerTrip)
{
    auto cfg = rackCfg(1.0, 4);
    cfg.breaker.enabled = true;
    cfg.breaker.at = 100 * kMs;
    cfg.breaker.duration = 50 * kMs;
    cfg.breaker.factor = 0.25; // 60 W rack: below the 80 W floor sum
    BudgetAllocator a(cfg, 4);

    EXPECT_FALSE(a.breakerActive(99 * kMs));
    EXPECT_TRUE(a.breakerActive(100 * kMs));
    EXPECT_FALSE(a.breakerActive(150 * kMs));

    const auto before = a.allocate(99 * kMs, {40, 40, 40, 40});
    const auto tripped = a.allocate(100 * kMs, {40, 40, 40, 40});
    const auto after = a.allocate(150 * kMs, {40, 40, 40, 40});

    double sum = 0.0;
    for (double w : tripped)
        sum += w;
    EXPECT_NEAR(sum, 240.0 * 0.25, 1e-6); // exactly the derated budget
    EXPECT_LT(tripped[0], cfg.minServerW);
    EXPECT_EQ(a.emergencyEpochs(), 1u);
    EXPECT_GT(before[0], tripped[0]);
    EXPECT_GT(after[0], tripped[0]);
}

TEST(BudgetAllocator, UtilizationAveragesDemandOverBudget)
{
    BudgetAllocator a(rackCfg(1.0, 2), 2); // 120 W rack
    a.allocate(0, {30.0, 30.0});           // 0.5
    a.allocate(10 * kMs, {60.0, 60.0});    // 1.0
    EXPECT_NEAR(a.budgetUtilization(), 0.75, 1e-9);
    EXPECT_NEAR(a.budgetUtilization(5 * kMs), 1.0, 1e-9);
    EXPECT_EQ(a.epochs(), 2u);
}

// ------------------------------------------------- server-in-the-loop

server::ServerConfig
cappedServer(CapActuator act, double limit, double util)
{
    server::ServerConfig cfg;
    cfg.policy = soc::PackagePolicy::Cpc1a;
    cfg.workload = workload::WorkloadConfig::memcachedEtc(0);
    cfg.workload.arrivalKind = workload::ArrivalKind::Poisson;
    cfg.workload.qps = cfg.workload.qpsForUtilization(util, 10);
    cfg.warmup = 60 * kMs; // covers the controller's settle time
    cfg.duration = 250 * kMs;
    cfg.cap.enabled = true;
    cfg.cap.limitW = limit;
    cfg.cap.actuator = act;
    return cfg;
}

TEST(ServerCapping, ConvergesToLimitWithoutViolations)
{
    // Steady 30% load draws ~49.5 W uncapped; both injection-capable
    // actuators must hold a 42 W limit within ±5% and, once settled,
    // never let the sliding window exceed the violation tolerance.
    for (const CapActuator act :
         {CapActuator::IdleInject, CapActuator::Hybrid}) {
        server::ServerSim s(cappedServer(act, 42.0, 0.30));
        const auto r = s.run();
        EXPECT_GT(r.capSamples, 100u) << capActuatorName(act);
        EXPECT_EQ(r.capViolations, 0u) << capActuatorName(act);
        EXPECT_NEAR(r.pkgPowerW, 42.0, 42.0 * 0.05)
            << capActuatorName(act);
        EXPECT_NEAR(r.capWindowPowerW, 42.0, 42.0 * 0.10)
            << capActuatorName(act);
        EXPECT_GT(r.capThrottleResidency, 0.05) << capActuatorName(act);
        EXPECT_DOUBLE_EQ(r.capLimitW, 42.0);
    }
}

TEST(ServerCapping, DvfsOnlyHoldsAnAchievableLimit)
{
    // 45.5 W is within the clamp's authority at 30% load.
    server::ServerSim s(
        cappedServer(CapActuator::DvfsOnly, 45.5, 0.30));
    const auto r = s.run();
    EXPECT_GT(r.capSamples, 100u);
    EXPECT_EQ(r.capViolations, 0u);
    EXPECT_NEAR(r.pkgPowerW, 45.5, 45.5 * 0.05);
    EXPECT_GT(r.capDvfsCapacityLoss, 0.1);
    EXPECT_DOUBLE_EQ(r.capThrottleResidency, 0.0); // never gates
}

TEST(ServerCapping, IdleInjectionForcesPackageIdle)
{
    // The actuator's mechanism: forced idle windows push the package
    // into PC1A far beyond what the workload's natural gaps give.
    server::ServerSim capped(
        cappedServer(CapActuator::IdleInject, 42.0, 0.30));
    server::ServerSim free_(
        cappedServer(CapActuator::IdleInject, 0.0, 0.30));
    const auto rc = capped.run();
    const auto rf = free_.run();
    EXPECT_GT(rc.pc1aResidency(), rf.pc1aResidency() + 0.15);
    EXPECT_LT(rc.pkgPowerW, rf.pkgPowerW - 5.0);
}

TEST(ServerCapping, UncappedLimitIsMonitorOnly)
{
    server::ServerSim s(
        cappedServer(CapActuator::Hybrid, 0.0, 0.20));
    const auto r = s.run();
    EXPECT_DOUBLE_EQ(r.capThrottleResidency, 0.0);
    EXPECT_DOUBLE_EQ(r.capDvfsCapacityLoss, 0.0);
    EXPECT_EQ(r.capViolations, 0u);
    EXPECT_GT(r.capWindowPowerW, 20.0); // still metering
}

// ------------------------------------------------------ fleet-in-the-loop

fleet::FleetConfig
cappedFleet(double oversub, CapActuator act, double util,
            std::uint64_t seed = 42)
{
    fleet::FleetConfig fc;
    fc.numServers = 4;
    fc.policy = soc::PackagePolicy::Cpc1a;
    fc.workload = workload::WorkloadConfig::memcachedEtc(0);
    fc.workload.arrivalKind = workload::ArrivalKind::Poisson;
    fc.traffic.arrivalKind = workload::ArrivalKind::Poisson;
    fc.traffic.qps = fc.workload.qpsForUtilization(
        util, static_cast<int>(fc.numServers) *
            soc::SkxConfig::forPolicy(fc.policy).numCores);
    fc.sloUs = 10000.0;
    fc.warmup = 40 * kMs;
    fc.duration = 200 * kMs;
    fc.seed = seed;
    fc.budget.enabled = true;
    fc.budget.oversubscription = oversub;
    fc.cap.actuator = act;
    return fc;
}

TEST(FleetCapping, ThreadCountDoesNotChangeResults)
{
    // The allocator runs single-threaded between epochs and every cap
    // loop lives inside its server's own event queue, so capped fleet
    // runs must stay bit-identical across worker threads.
    fleet::FleetReport ref;
    bool first = true;
    for (const unsigned threads : {1u, 2u, 8u}) {
        auto fc = cappedFleet(1.5, CapActuator::Hybrid, 0.25, 11);
        fc.threads = threads;
        const auto r = fleet::FleetSim(fc).run();
        ASSERT_GT(r.completed, 500u);
        if (first) {
            ref = r;
            first = false;
            continue;
        }
        EXPECT_EQ(r.dispatched, ref.dispatched) << threads;
        EXPECT_EQ(r.completed, ref.completed) << threads;
        EXPECT_EQ(r.capViolations, ref.capViolations) << threads;
        EXPECT_EQ(r.capSamples, ref.capSamples) << threads;
        EXPECT_DOUBLE_EQ(r.pkgPowerW, ref.pkgPowerW) << threads;
        EXPECT_DOUBLE_EQ(r.p99LatencyUs, ref.p99LatencyUs) << threads;
        EXPECT_DOUBLE_EQ(r.capThrottleResidency,
                         ref.capThrottleResidency)
            << threads;
        EXPECT_DOUBLE_EQ(r.budgetUtilization, ref.budgetUtilization)
            << threads;
    }
}

TEST(FleetCapping, OversubscribedFleetHoldsTheRackBudget)
{
    const auto r =
        fleet::FleetSim(cappedFleet(1.5, CapActuator::IdleInject, 0.25))
            .run();
    ASSERT_TRUE(r.capEnabled);
    EXPECT_NEAR(r.rackBudgetW, 4 * 62.0 / 1.5, 1e-9);
    // The fleet's package draw respects the rack budget (small
    // tolerance: RAPL windows and allocation epochs don't align).
    EXPECT_LT(r.pkgPowerW, r.rackBudgetW * 1.05);
    EXPECT_GT(r.capThrottleResidency, 0.02);
    EXPECT_GT(r.budgetUtilization, 0.5);
    EXPECT_EQ(r.emergencyEpochs, 0u);
}

TEST(FleetCapping, BreakerTripShedsPowerWithinOneEpoch)
{
    auto fc = cappedFleet(1.0, CapActuator::IdleInject, 0.20, 5);
    fc.duration = 260 * kMs;
    fc.budget.breaker.enabled = true;
    fc.budget.breaker.at = 150 * kMs;
    fc.budget.breaker.duration = 100 * kMs;
    fc.budget.breaker.factor = 0.60;
    const auto r = fleet::FleetSim(fc).run();

    // Locate the allocation epochs straddling the trip.
    const auto &log = r.budgetLog;
    ASSERT_GT(log.size(), 4u);
    double pre_demand = 0.0, pre_budget = 0.0;
    bool found = false;
    for (std::size_t i = 0; i + 2 < log.size(); ++i) {
        if (log[i + 1].at < fc.budget.breaker.at ||
            log[i].at >= fc.budget.breaker.at)
            continue;
        found = true;
        pre_demand = log[i].demandW;
        pre_budget = log[i].budgetW;
        const auto &next = log[i + 1];  // first tripped allocation
        const auto &nnext = log[i + 2]; // demand one epoch later
        EXPECT_NEAR(next.budgetW, pre_budget * 0.60, 1e-9);
        // One budget epoch after the cut the fleet has shed most of
        // the excess: demand sits within 15% of the derated budget.
        EXPECT_LT(nnext.demandW, next.budgetW * 1.15);
        EXPECT_LT(nnext.demandW, pre_demand * 0.85);
        break;
    }
    ASSERT_TRUE(found);
    EXPECT_GT(pre_demand, 0.0);
}

TEST(FleetCapping, CsvRowCarriesCapColumns)
{
    const auto r =
        fleet::FleetSim(cappedFleet(1.5, CapActuator::Hybrid, 0.2)).run();
    const auto header = fleet::FleetReport::csvHeader();
    const auto row = r.csvRow();
    EXPECT_NE(header.find("rack_budget_w"), std::string::npos);
    EXPECT_NE(header.find("cap_violation_rate"), std::string::npos);
    // Same column count in header and row.
    const auto count = [](const std::string &s) {
        std::size_t n = 1;
        for (char c : s)
            if (c == ',')
                ++n;
        return n;
    };
    EXPECT_EQ(count(header), count(row));
}

} // namespace
} // namespace apc::cap
