/**
 * @file
 * Tests for the legacy GPMU PC6 flow (uncore/gpmu.h) running on the
 * composed Cdeep SoC: entry once all cores reach CC6, deep states for
 * IOs/DRAM/CLM/PLLs, µs-scale exit, Table 1 power levels.
 */

#include <gtest/gtest.h>

#include "soc/soc.h"

namespace apc::uncore {
namespace {

using sim::kMs;
using sim::kUs;

struct DeepFixture
{
    sim::Simulation s;
    soc::SkxConfig cfg;
    std::unique_ptr<soc::Soc> soc;

    DeepFixture()
    {
        cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cdeep);
        // Short ladder thresholds so tests settle quickly.
        cfg.ladder.cc1ToCc1e = 10 * kUs;
        cfg.ladder.cc1eToCc6 = 50 * kUs;
        soc = std::make_unique<soc::Soc>(s, cfg,
                                         soc::PackagePolicy::Cdeep);
    }

    void
    allIdle()
    {
        for (std::size_t i = 0; i < soc->numCores(); ++i)
            soc->core(i).release();
    }
};

TEST(GpmuPc6, EntersPc6OnceAllCoresCc6)
{
    DeepFixture f;
    f.allIdle();
    f.s.runUntil(2 * kMs);
    EXPECT_EQ(f.soc->gpmu().state(), Gpmu::State::Pc6);
    EXPECT_EQ(f.soc->pkgState(), soc::PkgState::Pc6);
    EXPECT_EQ(f.soc->gpmu().pc6Entries(), 1u);
}

TEST(GpmuPc6, DeepStatesReached)
{
    DeepFixture f;
    f.allIdle();
    f.s.runUntil(2 * kMs);
    for (std::size_t i = 0; i < f.soc->numLinks(); ++i)
        EXPECT_EQ(f.soc->link(i).state(), io::LState::L1);
    for (std::size_t i = 0; i < f.soc->numMcs(); ++i)
        EXPECT_EQ(f.soc->mc(i).state(), dram::McState::SelfRefresh);
    EXPECT_FALSE(f.soc->plls().allLocked());
    EXPECT_FALSE(f.soc->clm().available().read());
    EXPECT_DOUBLE_EQ(f.soc->clm().voltage(), 0.5);
    EXPECT_FALSE(f.soc->fabricReady());
}

TEST(GpmuPc6, PowerMatchesTable1)
{
    DeepFixture f;
    f.allIdle();
    f.s.runUntil(2 * kMs);
    // Paper Table 1: PC6 = 12 W SoC + 0.5 W DRAM.
    EXPECT_NEAR(f.soc->meter().planePower(power::Plane::Package), 11.9,
                0.3);
    EXPECT_NEAR(f.soc->meter().planePower(power::Plane::Dram), 0.51,
                0.05);
}

TEST(GpmuPc6, EntryLatencyIsTensOfMicroseconds)
{
    DeepFixture f;
    f.allIdle();
    f.s.runUntil(2 * kMs);
    const double entry_us = f.soc->gpmu().entryLatencyUs().mean();
    EXPECT_GT(entry_us, 10.0);
    EXPECT_LT(entry_us, 60.0);
}

TEST(GpmuPc6, WakeRestoresEverything)
{
    DeepFixture f;
    f.allIdle();
    f.s.runUntil(2 * kMs);
    ASSERT_EQ(f.soc->gpmu().state(), Gpmu::State::Pc6);

    bool woke = false;
    f.soc->core(0).requestWake([&] { woke = true; });
    f.s.runUntil(4 * kMs);
    EXPECT_TRUE(woke);
    EXPECT_EQ(f.soc->gpmu().state(), Gpmu::State::Pc0);
    EXPECT_TRUE(f.soc->fabricReady());
    EXPECT_TRUE(f.soc->plls().allLocked());
    for (std::size_t i = 0; i < f.soc->numMcs(); ++i)
        EXPECT_EQ(f.soc->mc(i).state(), dram::McState::Active);
}

TEST(GpmuPc6, TotalTransitionExceeds50us)
{
    // Table 1: PC6 worst-case entry+exit > 50 µs.
    DeepFixture f;
    f.allIdle();
    f.s.runUntil(2 * kMs);
    f.soc->core(0).requestWake(nullptr);
    f.s.runUntil(4 * kMs);
    const double total = f.soc->gpmu().entryLatencyUs().mean() +
        f.soc->gpmu().exitLatencyUs().mean();
    EXPECT_GT(total, 50.0);
}

TEST(GpmuPc6, IoTrafficWakesPackage)
{
    DeepFixture f;
    f.allIdle();
    f.s.runUntil(2 * kMs);
    ASSERT_EQ(f.soc->gpmu().state(), Gpmu::State::Pc6);
    bool delivered = false;
    sim::Tick delivered_at = 0;
    f.soc->nic().transfer(100 * sim::kNs, [&] {
        delivered = true;
        delivered_at = f.s.now();
    });
    f.s.runUntil(3 * kMs);
    EXPECT_TRUE(delivered);
    // The delivery had to ride through the µs-scale L1 retrain.
    EXPECT_GE(delivered_at, 2 * kMs + 6 * kUs);
    // With no core activity the GPMU legitimately re-enters PC6 after
    // the traffic drains.
    EXPECT_EQ(f.soc->gpmu().state(), Gpmu::State::Pc6);
    EXPECT_GE(f.soc->gpmu().pc6Entries(), 2u);
}

TEST(GpmuPc6, AbortedEntryUnwinds)
{
    DeepFixture f;
    f.allIdle();
    // Run until the entry flow is in flight, then wake a core.
    f.s.runUntil(100 * kUs); // cores at CC6 ~ (2.5+10+2.5+50+33) µs
    // Find the moment entry starts; wake shortly after.
    while (f.soc->gpmu().state() != Gpmu::State::EnteringPc6 &&
           f.s.now() < 2 * kMs) {
        f.s.runUntil(f.s.now() + 5 * kUs);
    }
    ASSERT_EQ(f.soc->gpmu().state(), Gpmu::State::EnteringPc6);
    f.soc->core(3).requestWake(nullptr);
    f.s.runUntil(f.s.now() + 2 * kMs);
    EXPECT_EQ(f.soc->gpmu().state(), Gpmu::State::Pc0);
    EXPECT_TRUE(f.soc->fabricReady());
}

TEST(GpmuPc6, DisabledPolicyNeverEnters)
{
    sim::Simulation s;
    auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cshallow);
    soc::Soc soc(s, cfg, soc::PackagePolicy::Cshallow);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(5 * kMs);
    EXPECT_EQ(soc.gpmu().state(), Gpmu::State::Pc0);
    EXPECT_EQ(soc.pkgState(), soc::PkgState::Pc0idle);
    EXPECT_EQ(soc.gpmu().pc6Entries(), 0u);
}

TEST(GpmuPc6, ShallowBaselinePowerMatchesTable1)
{
    // Cshallow all-idle: 44 W SoC + 5.5 W DRAM (Table 1 PC0idle).
    sim::Simulation s;
    auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cshallow);
    soc::Soc soc(s, cfg, soc::PackagePolicy::Cshallow);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(1 * kMs);
    EXPECT_NEAR(soc.meter().planePower(power::Plane::Package), 44.0, 0.1);
    EXPECT_NEAR(soc.meter().planePower(power::Plane::Dram), 5.5, 0.05);
}

} // namespace
} // namespace apc::uncore
