/**
 * @file
 * SoC composition tests: package-state bookkeeping, the fabric wake
 * path, statistics reset, and configuration scaling (parameterized over
 * core counts — the model must compose for other SKUs, not just the
 * 10-core Xeon Silver 4114).
 */

#include <gtest/gtest.h>

#include "soc/soc.h"

namespace apc::soc {
namespace {

using sim::kMs;
using sim::kUs;

TEST(Soc, TopologyMatchesXeonSilver4114)
{
    sim::Simulation s;
    auto cfg = SkxConfig::forPolicy(PackagePolicy::Cshallow);
    Soc soc(s, cfg, PackagePolicy::Cshallow);
    EXPECT_EQ(soc.numCores(), 10u);
    EXPECT_EQ(soc.numLinks(), 6u); // 3 PCIe + DMI + 2 UPI
    EXPECT_EQ(soc.numMcs(), 2u);
    EXPECT_EQ(soc.plls().size(), 8u);
    EXPECT_EQ(&soc.nic(), &soc.link(0));
}

TEST(Soc, PkgStateFollowsCoreActivity)
{
    sim::Simulation s;
    auto cfg = SkxConfig::forPolicy(PackagePolicy::Cshallow);
    Soc soc(s, cfg, PackagePolicy::Cshallow);
    EXPECT_EQ(soc.pkgState(), PkgState::Pc0);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(10 * kUs);
    EXPECT_EQ(soc.pkgState(), PkgState::Pc0idle);
    soc.core(3).requestWake(nullptr);
    s.runAll();
    EXPECT_EQ(soc.pkgState(), PkgState::Pc0);
}

TEST(Soc, FabricAlwaysReadyUnderShallowPolicy)
{
    sim::Simulation s;
    auto cfg = SkxConfig::forPolicy(PackagePolicy::Cshallow);
    Soc soc(s, cfg, PackagePolicy::Cshallow);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(1 * kMs);
    EXPECT_TRUE(soc.fabricReady());
    bool ran = false;
    soc.whenFabricReady([&] { ran = true; });
    EXPECT_TRUE(ran); // synchronous when already open
}

TEST(Soc, FabricWaitersDrainInOrder)
{
    sim::Simulation s;
    auto cfg = SkxConfig::forPolicy(PackagePolicy::Cpc1a);
    Soc soc(s, cfg, PackagePolicy::Cpc1a);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(10 * kUs);
    ASSERT_FALSE(soc.fabricReady());
    std::vector<int> order;
    soc.whenFabricReady([&] { order.push_back(1); });
    soc.whenFabricReady([&] { order.push_back(2); });
    soc.nic().transfer(0, nullptr); // wake
    s.runUntil(20 * kUs);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Soc, ResetStatsClearsCountersMidRun)
{
    sim::Simulation s;
    auto cfg = SkxConfig::forPolicy(PackagePolicy::Cpc1a);
    Soc soc(s, cfg, PackagePolicy::Cpc1a);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(1 * kMs);
    soc.resetStats();
    const sim::Tick t0 = s.now();
    s.runUntil(t0 + 1 * kMs);
    // Post-reset: fully in PC1A.
    EXPECT_NEAR(soc.pkgResidency().residency(
                    static_cast<std::size_t>(PkgState::Pc1a), s.now()),
                1.0, 1e-9);
    EXPECT_NEAR(sim::toSeconds(soc.fullIdleTime()), 1e-3, 1e-5);
}

TEST(Soc, PoliciesDifferOnlyWhereExpected)
{
    const auto sh = SkxConfig::forPolicy(PackagePolicy::Cshallow);
    const auto dp = SkxConfig::forPolicy(PackagePolicy::Cdeep);
    const auto pa = SkxConfig::forPolicy(PackagePolicy::Cpc1a);
    EXPECT_FALSE(sh.gpmu.pc6Enabled);
    EXPECT_TRUE(dp.gpmu.pc6Enabled);
    EXPECT_FALSE(pa.gpmu.pc6Enabled);
    EXPECT_FALSE(sh.apc.enabled);
    EXPECT_TRUE(pa.apc.enabled);
    EXPECT_FALSE(sh.cstateMask.isEnabled(cpu::CState::CC6));
    EXPECT_TRUE(dp.cstateMask.isEnabled(cpu::CState::CC6));
    // The power calibration itself is shared.
    EXPECT_DOUBLE_EQ(sh.clm.dynWatts, pa.clm.dynWatts);
    EXPECT_DOUBLE_EQ(sh.mc.dramIdleWatts, dp.mc.dramIdleWatts);
}

// --- Configuration scaling ------------------------------------------

class SocScaling : public ::testing::TestWithParam<int>
{};

TEST_P(SocScaling, IdlePowerScalesWithCoreCount)
{
    const int n = GetParam();
    sim::Simulation s;
    auto cfg = SkxConfig::forPolicy(PackagePolicy::Cshallow);
    cfg.numCores = n;
    Soc soc(s, cfg, PackagePolicy::Cshallow);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(100 * kUs);
    // PC0idle = n * 1.21 (cores) + 31.9 (uncore).
    const double expected = n * 1.21 + 19.84 + 10.0 + 0.056 + 2.0;
    EXPECT_NEAR(soc.meter().planePower(power::Plane::Package), expected,
                0.05);
}

TEST_P(SocScaling, Pc1aStillWorksAtAnyCoreCount)
{
    const int n = GetParam();
    sim::Simulation s;
    auto cfg = SkxConfig::forPolicy(PackagePolicy::Cpc1a);
    cfg.numCores = n;
    Soc soc(s, cfg, PackagePolicy::Cpc1a);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(100 * kUs);
    EXPECT_EQ(soc.pkgState(), PkgState::Pc1a);
    // And it wakes correctly.
    bool delivered = false;
    soc.nic().transfer(0, [&] { delivered = true; });
    s.runUntil(s.now() + 10 * kUs);
    EXPECT_TRUE(delivered);
    EXPECT_LE(soc.apmu()->exitLatencyNs().max(), 170.0);
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, SocScaling,
                         ::testing::Values(1, 2, 4, 10, 20, 28));

// --- Custom link sets --------------------------------------------------

TEST(SocCustom, SingleLinkNoUpiStillReachesPc1a)
{
    sim::Simulation s;
    auto cfg = SkxConfig::forPolicy(PackagePolicy::Cpc1a);
    cfg.links = {io::IoLinkConfig::pcie(0)};
    Soc soc(s, cfg, PackagePolicy::Cpc1a);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(100 * kUs);
    EXPECT_EQ(soc.pkgState(), PkgState::Pc1a);
}

TEST(SocCustom, SingleMemoryController)
{
    sim::Simulation s;
    auto cfg = SkxConfig::forPolicy(PackagePolicy::Cpc1a);
    cfg.numMemCtrls = 1;
    Soc soc(s, cfg, PackagePolicy::Cpc1a);
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    s.runUntil(100 * kUs);
    EXPECT_EQ(soc.pkgState(), PkgState::Pc1a);
    EXPECT_EQ(soc.mc(0).state(), dram::McState::CkeOff);
}

} // namespace
} // namespace apc::soc
