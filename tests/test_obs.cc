/**
 * @file
 * Observability tests: string interner, trace ring-buffer semantics,
 * deterministic merge/digest, Perfetto export shape, metrics sampler,
 * phase profiler — and the contract that matters most: tracing and
 * metrics have ZERO behavioral footprint (fleet reports byte-identical
 * with observability on or off, at any thread count), while the trace
 * itself is identical across thread counts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "fleet/fleet_sim.h"
#include "obs/interner.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/tracer.h"

namespace apc {
namespace {

using sim::kMs;
using sim::kUs;

// ------------------------------------------------------------- interner

TEST(StringInterner, IdsAreStableAndDeduplicated)
{
    obs::StringInterner in;
    const obs::StrId a = in.intern("alpha");
    const obs::StrId b = in.intern("beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(in.intern("alpha"), a); // dedup
    EXPECT_EQ(in.str(a), "alpha");
    EXPECT_EQ(in.str(b), "beta");
    EXPECT_EQ(in.find("beta"), b);
    EXPECT_EQ(in.find("gamma"), obs::kNoStr);
    EXPECT_EQ(in.size(), 2u);
}

TEST(StringInterner, BoundedTableRejectsOverflowButNeverForgets)
{
    obs::StringInterner in(2);
    EXPECT_EQ(in.capacity(), 2u);
    const obs::StrId a = in.intern("alpha");
    const obs::StrId b = in.intern("beta");
    ASSERT_NE(a, obs::kNoStr);
    ASSERT_NE(b, obs::kNoStr);

    // Capacity exhausted: first-sight interns are rejected and counted.
    EXPECT_EQ(in.intern("gamma"), obs::kNoStr);
    EXPECT_EQ(in.intern("delta"), obs::kNoStr);
    EXPECT_EQ(in.rejected(), 2u);
    EXPECT_EQ(in.size(), 2u);
    EXPECT_EQ(in.find("gamma"), obs::kNoStr);

    // Re-interning what the table already holds still succeeds, with
    // the same id as the first registration.
    EXPECT_EQ(in.intern("alpha"), a);
    EXPECT_EQ(in.intern("beta"), b);
    EXPECT_EQ(in.rejected(), 2u); // duplicates are not rejections
}

TEST(StringInterner, DuplicateReinternKeepsFirstRegistrationId)
{
    obs::StringInterner in;
    const obs::StrId a = in.intern("series.power");
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(in.intern("series.power"), a);
    EXPECT_EQ(in.size(), 1u);
    // Ids depend only on registration order.
    EXPECT_EQ(in.intern("series.later"), a + 1);
}

TEST(Tracer, InternedIdsSurviveTraceWriterReset)
{
    obs::TraceConfig tc;
    tc.enabled = true;
    obs::Tracer tr(tc, 1);
    const obs::StrId custom = tr.intern("phase.alpha");
    obs::TraceWriter *w = tr.writer(0);
    w->counter(1 * kUs, obs::Name::CapLimitW, obs::Track::Cap, 1.0);
    w->record(obs::TraceKind::Counter, obs::Track::Cap, 2 * kUs, 0,
              custom, 0, 2.0);
    ASSERT_EQ(w->size(), 2u);

    // Reset discards records but not the shared name table: the same
    // string resolves to the same id, and a record written under the
    // old id still renders the right name.
    w->reset();
    EXPECT_EQ(w->size(), 0u);
    EXPECT_EQ(w->recorded(), 0u);
    EXPECT_EQ(w->dropped(), 0u);
    EXPECT_EQ(tr.intern("phase.alpha"), custom);
    EXPECT_STREQ(tr.nameOf(custom), "phase.alpha");
    w->record(obs::TraceKind::Counter, obs::Track::Cap, 3 * kUs, 0,
              custom, 0, 3.0);
    ASSERT_EQ(w->size(), 1u);
    w->forEach([custom](const obs::TraceRecord &r) {
        EXPECT_EQ(r.name, custom);
        EXPECT_EQ(r.seq, 0u); // sequence restarts after reset
    });
}

// ----------------------------------------------------------- ring buffer

TEST(TraceWriter, WrapsOverOldestAndCountsDrops)
{
    obs::TraceWriter w(0, 4);
    for (int i = 0; i < 6; ++i)
        w.instant(i * kUs, obs::Name::NicIrq, obs::Track::Nic,
                  static_cast<std::uint64_t>(i));
    EXPECT_EQ(w.size(), 4u);
    EXPECT_EQ(w.recorded(), 6u);
    EXPECT_EQ(w.dropped(), 2u);
    // Oldest-first visitation: the two earliest records were evicted.
    std::vector<std::uint64_t> ids;
    w.forEach([&ids](const obs::TraceRecord &r) { ids.push_back(r.id); });
    EXPECT_EQ(ids, (std::vector<std::uint64_t>{2, 3, 4, 5}));
}

TEST(TraceWriter, SeqPreservesRecordingOrder)
{
    obs::TraceWriter w(3, 16);
    w.span(5 * kUs, 2 * kUs, obs::Name::Serve, obs::Track::Requests, 7);
    w.counter(1 * kUs, obs::Name::CapLimitW, obs::Track::Cap, 42.5);
    std::vector<std::uint32_t> seqs;
    w.forEach(
        [&seqs](const obs::TraceRecord &r) { seqs.push_back(r.seq); });
    EXPECT_EQ(seqs, (std::vector<std::uint32_t>{0, 1}));
}

// -------------------------------------------------------- merge + digest

TEST(Tracer, MergeIsTimeWriterSeqOrdered)
{
    obs::TraceConfig tc;
    tc.enabled = true;
    obs::Tracer tr(tc, 2);
    // Writer streams are recording-ordered, not time-ordered (spans are
    // recorded at completion with ts = start).
    tr.writer(0)->instant(200 * kUs, obs::Name::NicIrq, obs::Track::Nic);
    tr.writer(0)->instant(100 * kUs, obs::Name::NicIrq, obs::Track::Nic);
    tr.writer(1)->instant(100 * kUs, obs::Name::NicDrop, obs::Track::Nic);
    tr.writer(1)->instant(150 * kUs, obs::Name::NicDrop, obs::Track::Nic);

    const auto m = tr.merged();
    ASSERT_EQ(m.size(), 4u);
    EXPECT_EQ(m[0].rec->ts, 100 * kUs);
    EXPECT_EQ(m[0].writer, 0u);
    EXPECT_EQ(m[1].rec->ts, 100 * kUs);
    EXPECT_EQ(m[1].writer, 1u);
    EXPECT_EQ(m[2].rec->ts, 150 * kUs);
    EXPECT_EQ(m[3].rec->ts, 200 * kUs);

    // Digest covers the semantic payload: same content -> same digest,
    // different content -> (overwhelmingly) different digest.
    const std::uint64_t d = tr.digest();
    EXPECT_EQ(d, tr.digest());
    tr.writer(0)->instant(300 * kUs, obs::Name::NicIrq, obs::Track::Nic);
    EXPECT_NE(d, tr.digest());
}

TEST(Tracer, DynamicNamesResolveAboveStaticVocabulary)
{
    obs::Tracer tr({}, 1);
    const obs::StrId id = tr.intern("custom.metric");
    EXPECT_GE(id, obs::kStaticNames);
    EXPECT_STREQ(tr.nameOf(id), "custom.metric");
    EXPECT_STREQ(
        tr.nameOf(static_cast<obs::StrId>(obs::Name::Request)), "request");
    EXPECT_STREQ(tr.nameOf(static_cast<obs::StrId>(obs::Name::PkgPc1a)),
                 "PC1A");
}

// -------------------------------------------------------- Perfetto export

TEST(Tracer, PerfettoExportShape)
{
    obs::TraceConfig tc;
    tc.enabled = true;
    obs::Tracer tr(tc, 2);
    tr.setEntityLabel(0, "fleet");
    tr.setEntityLabel(1, "server 0");
    tr.writer(0)->span(10 * kUs, 5 * kUs, obs::Name::Request,
                       obs::Track::Requests, 99);
    tr.writer(1)->instant(12 * kUs, obs::Name::NicDrop, obs::Track::Nic,
                          3);
    tr.writer(1)->counter(14 * kUs, obs::Name::CapLimitW, obs::Track::Cap,
                          85.0);

    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *f = open_memstream(&buf, &len);
    ASSERT_TRUE(tr.writePerfettoJson(f));
    std::fclose(f);
    std::string out(buf, len);
    free(buf);

    EXPECT_NE(out.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
    // Metadata names both entities and their used tracks.
    EXPECT_NE(out.find("\"args\":{\"name\":\"fleet\"}"),
              std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"name\":\"server 0\"}"),
              std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"name\":\"requests\"}"),
              std::string::npos);
    // One record of each phase kind.
    EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"request\""), std::string::npos);
    // Span timestamps are exported in microseconds.
    EXPECT_NE(out.find("\"ts\":10.0000"), std::string::npos);
    EXPECT_NE(out.find("\"dur\":5.0000"), std::string::npos);
}

TEST(Tracer, PerfettoExportReportsIoFailure)
{
    obs::Tracer tr({}, 1);
    tr.writer(0)->instant(0, obs::Name::NicIrq, obs::Track::Nic);
    EXPECT_FALSE(tr.writePerfettoJson("/nonexistent/dir/trace.json"));
}

// --------------------------------------------------------------- metrics

TEST(MetricsSampler, SamplesOnIntervalAndSkipsUnset)
{
    obs::MetricsConfig mc;
    mc.enabled = true;
    mc.interval = 1 * kMs;
    obs::MetricsSampler m(mc);
    const auto power = m.addSeries("fleet.pkg_power_w");
    const auto budget = m.addSeries("rack.budget_w");
    const auto srv = m.addSeries("server.outstanding", 3);

    EXPECT_TRUE(m.due(0));
    m.beginSample(0);
    m.set(power, 120.5);
    m.set(srv, 4);
    // budget left NaN this row.
    EXPECT_FALSE(m.due(1 * kMs - 1));
    EXPECT_TRUE(m.due(1 * kMs));
    m.beginSample(1 * kMs);
    m.set(power, 118.25);
    m.set(budget, 400.0);

    ASSERT_EQ(m.numSamples(), 2u);
    ASSERT_EQ(m.numSeries(), 3u);
    EXPECT_TRUE(std::isnan(m.series(budget)[0]));
    EXPECT_EQ(m.series(budget)[1], 400.0);
    EXPECT_TRUE(std::isnan(m.series(srv)[1]));

    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *f = open_memstream(&buf, &len);
    ASSERT_TRUE(m.writeCsv(f));
    std::fclose(f);
    std::string csv(buf, len);
    free(buf);
    EXPECT_NE(csv.find("t_us,series,entity,value"), std::string::npos);
    EXPECT_NE(csv.find("fleet.pkg_power_w,,120.5"), std::string::npos);
    EXPECT_NE(csv.find("server.outstanding,3,4"), std::string::npos);
    // The NaN slot produced no row: budget appears exactly once.
    EXPECT_EQ(csv.find("rack.budget_w"), csv.rfind("rack.budget_w"));

    f = open_memstream(&buf, &len);
    ASSERT_TRUE(m.writeJson(f));
    std::fclose(f);
    std::string json(buf, len);
    free(buf);
    EXPECT_NE(json.find("\"interval_us\""), std::string::npos);
    EXPECT_NE(json.find("null"), std::string::npos); // NaN -> JSON null
    EXPECT_FALSE(m.writeCsv("/nonexistent/dir/metrics.csv"));
}

TEST(MetricsSampler, NonPositiveIntervalClampsInsteadOfSpinning)
{
    obs::MetricsConfig mc;
    mc.enabled = true;
    mc.interval = 0; // would otherwise be due() at every epoch forever
    obs::MetricsSampler m(mc);
    EXPECT_EQ(m.config().interval, 1);
    EXPECT_TRUE(m.due(0));
    m.beginSample(0);
    EXPECT_FALSE(m.due(0)); // time actually advances the schedule
    EXPECT_TRUE(m.due(1));
}

TEST(MetricsSampler, SetBeforeFirstSampleIsDropped)
{
    obs::MetricsConfig mc;
    mc.enabled = true;
    obs::MetricsSampler m(mc);
    const auto id = m.addSeries("fleet.pkg_power_w");
    m.set(id, 42.0); // no row open yet: dropped, not UB
    EXPECT_EQ(m.numSamples(), 0u);
    m.beginSample(0);
    ASSERT_EQ(m.series(id).size(), 1u);
    EXPECT_TRUE(std::isnan(m.series(id)[0]));
}

TEST(MetricsSampler, PartialRowConsistentAcrossCsvAndJson)
{
    obs::MetricsConfig mc;
    mc.enabled = true;
    mc.interval = 1 * kMs;
    obs::MetricsSampler m(mc);
    const auto a = m.addSeries("fleet.a");
    const auto b = m.addSeries("fleet.b");
    m.beginSample(0);
    m.set(a, 1.0);
    m.set(b, 2.0);
    m.beginSample(1 * kMs); // final row left partial
    m.set(a, 3.0);

    // Every series spans every row (the partial row is padded, never
    // ragged), and both exports agree on which slots are unset: CSV
    // rows (set values) + JSON nulls (unset) = series * samples.
    ASSERT_EQ(m.numSamples(), 2u);
    for (obs::SeriesId id : {a, b})
        EXPECT_EQ(m.series(id).size(), m.numSamples());

    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *f = open_memstream(&buf, &len);
    ASSERT_TRUE(m.writeCsv(f));
    std::fclose(f);
    std::string csv(buf, len);
    free(buf);
    std::size_t csv_rows = 0;
    for (char c : csv)
        if (c == '\n')
            ++csv_rows;
    --csv_rows; // header

    f = open_memstream(&buf, &len);
    ASSERT_TRUE(m.writeJson(f));
    std::fclose(f);
    std::string json(buf, len);
    free(buf);
    std::size_t nulls = 0;
    for (std::size_t pos = json.find("null"); pos != std::string::npos;
         pos = json.find("null", pos + 4))
        ++nulls;

    EXPECT_EQ(csv_rows, 3u);
    EXPECT_EQ(nulls, 1u);
    EXPECT_EQ(csv_rows + nulls, m.numSeries() * m.numSamples());
}

// -------------------------------------------------------------- profiler

TEST(PhaseProfiler, AccumulatesAndComputesImbalance)
{
    obs::PhaseProfiler p;
    p.enable(true);
    p.beginRun(4);
    { auto s = p.scope(obs::PhaseProfiler::Phase::Route); }
    { auto s = p.scope(obs::PhaseProfiler::Phase::Route); }
    EXPECT_EQ(p.count(obs::PhaseProfiler::Phase::Route), 2u);
    EXPECT_GE(p.totalSec(obs::PhaseProfiler::Phase::Route), 0.0);
    EXPECT_EQ(p.count(obs::PhaseProfiler::Phase::Merge), 0u);

    // max / mean: (4.0) / ((1+1+2+4)/4) = 2.0
    p.addShardTime(0, 1.0);
    p.addShardTime(1, 1.0);
    p.addShardTime(2, 2.0);
    p.addShardTime(3, 4.0);
    EXPECT_DOUBLE_EQ(p.shardImbalance(), 2.0);

    // beginRun clears prior measurements.
    p.beginRun(2);
    EXPECT_EQ(p.count(obs::PhaseProfiler::Phase::Route), 0u);
    EXPECT_DOUBLE_EQ(p.shardImbalance(), 1.0);
}

// ------------------------------------ zero-footprint contract at scale

fleet::FleetConfig
bigFleet(unsigned threads, std::size_t shard_size, bool observed)
{
    fleet::FleetConfig fc;
    fc.numServers = 1024;
    fc.policy = soc::PackagePolicy::Cpc1a;
    fc.workload = workload::WorkloadConfig::memcachedEtc(0);
    fc.dispatch = fleet::DispatchKind::LeastOutstanding;
    fc.traffic.arrivalKind = workload::ArrivalKind::Poisson;
    fc.traffic.qps = fc.workload.qpsForUtilization(
        0.05, static_cast<int>(fc.numServers) * 10);
    fc.traffic.fanout = {0.05, 4};
    fc.sloUs = 10000.0;
    fc.warmup = 4 * kMs;
    fc.duration = 12 * kMs;
    fc.seed = 77;
    fc.threads = threads;
    fc.shardSize = shard_size;
    fc.trace.enabled = observed;
    fc.metrics.enabled = observed;
    fc.metrics.interval = 2 * kMs;
    return fc;
}

std::string
metricsCsv(const fleet::FleetSim &fleet)
{
    char *buf = nullptr;
    std::size_t len = 0;
    std::FILE *f = open_memstream(&buf, &len);
    EXPECT_TRUE(fleet.metrics()->writeCsv(f));
    std::fclose(f);
    std::string out(buf, len);
    free(buf);
    return out;
}

TEST(ObsFleet, TracingHasZeroFootprintAndIsThreadCountInvariant)
{
    // Untraced baseline: the report bytes every observed run must match.
    const fleet::FleetReport untraced =
        fleet::FleetSim(bigFleet(1, 0, false)).run();
    const std::string reference = untraced.csvRow();

    struct Point
    {
        unsigned threads;
        std::size_t shardSize;
    };
    std::uint64_t ref_digest = 0;
    std::string ref_metrics;
    for (const Point &p :
         std::vector<Point>{{1, 0}, {2, 7}, {8, 64}}) {
        fleet::FleetSim fleet(bigFleet(p.threads, p.shardSize, true));
        const fleet::FleetReport rep = fleet.run();
        ASSERT_GT(rep.dispatched, 1000u);
        // Zero behavioral footprint: byte-identical to the untraced run.
        EXPECT_EQ(rep.csvRow(), reference)
            << "threads=" << p.threads << " shardSize=" << p.shardSize;
        // The trace itself is thread-count invariant.
        ASSERT_NE(fleet.tracer(), nullptr);
        EXPECT_GT(fleet.tracer()->totalRecorded(), 1000u);
        ASSERT_NE(fleet.metrics(), nullptr);
        EXPECT_GT(fleet.metrics()->numSamples(), 2u);
        const std::uint64_t d = fleet.tracer()->digest();
        const std::string mcsv = metricsCsv(fleet);
        if (ref_digest == 0) {
            ref_digest = d;
            ref_metrics = mcsv;
        } else {
            EXPECT_EQ(d, ref_digest)
                << "trace digest differs at threads=" << p.threads;
            EXPECT_EQ(mcsv, ref_metrics)
                << "metrics differ at threads=" << p.threads;
        }
    }
}

TEST(ObsFleet, WriteTraceExportsFullVocabulary)
{
    auto fc = bigFleet(2, 16, true);
    fc.numServers = 32;
    fc.traffic.qps = fc.workload.qpsForUtilization(
        0.10, static_cast<int>(fc.numServers) * 10);
    fc.duration = 8 * kMs;
    fleet::FleetSim fleet(fc);
    (void)fleet.run();

    const std::string path = "/tmp/apc_test_obs_trace.json";
    ASSERT_TRUE(fleet.writeTrace(path));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string out;
    char chunk[4096];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        out.append(chunk, n);
    std::fclose(f);
    std::remove(path.c_str());

    // Request lifecycle spans, package power-state spans, and the
    // engine's wall-clock pipeline phases all made it into the export.
    EXPECT_NE(out.find("\"name\":\"request\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"PC1A\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"route\""), std::string::npos);
    EXPECT_NE(out.find("engine (wall clock)"), std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"name\":\"server 0\"}"),
              std::string::npos);
}

TEST(ObsFleet, MetricsIntervalZeroRejectedAtSetup)
{
    auto fc = bigFleet(1, 0, true);
    fc.numServers = 8;
    fc.traffic.qps = fc.workload.qpsForUtilization(
        0.10, static_cast<int>(fc.numServers) * 10);
    fc.duration = 4 * kMs;
    fc.warmup = 2 * kMs;
    fc.metrics.interval = 0;
    fleet::FleetSim fleet(fc);
    // Rejected at setup: no sampler rather than one row per epoch.
    EXPECT_EQ(fleet.metrics(), nullptr);
    const auto rep = fleet.run();
    EXPECT_GT(rep.completed, 0u);
}

TEST(ObsFleet, RunShorterThanOneIntervalStillSamples)
{
    auto fc = bigFleet(1, 0, true);
    fc.numServers = 8;
    fc.traffic.qps = fc.workload.qpsForUtilization(
        0.10, static_cast<int>(fc.numServers) * 10);
    fc.warmup = 2 * kMs;
    fc.duration = 4 * kMs; // shorter than the sampling interval
    fc.metrics.interval = 50 * kMs;
    fleet::FleetSim fleet(fc);
    (void)fleet.run();
    ASSERT_NE(fleet.metrics(), nullptr);
    const obs::MetricsSampler &m = *fleet.metrics();
    // The first epoch boundary is always due: at least one row exists
    // even when the run never reaches a full interval.
    ASSERT_GE(m.numSamples(), 1u);
    for (obs::SeriesId id = 0; id < m.numSeries(); ++id)
        EXPECT_EQ(m.series(id).size(), m.numSamples()) << id;
    EXPECT_FALSE(metricsCsv(fleet).empty());
}

} // namespace
} // namespace apc
