/**
 * @file
 * Unit tests for the CPU core C-state model and idle governors.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/core.h"
#include "cpu/governor.h"
#include "power/energy_meter.h"

namespace apc::cpu {
namespace {

using sim::kUs;

std::unique_ptr<Core>
makeCore(sim::Simulation &s, power::EnergyMeter &m,
         CStateMask mask = CStateMask::shallowOnly(),
         sim::Tick promote1 = 20 * kUs, sim::Tick promote2 = 200 * kUs)
{
    LadderGovernor::Config g;
    g.mask = mask;
    g.cc1ToCc1e = promote1;
    g.cc1eToCc6 = promote2;
    return std::make_unique<Core>(s, m, 0, CoreConfig::skxDefaults(),
                                  std::make_unique<LadderGovernor>(g));
}

TEST(CoreConfig, SkxDefaultsMatchCalibration)
{
    const auto c = CoreConfig::skxDefaults();
    EXPECT_DOUBLE_EQ(c.cstates[0].powerWatts, 5.30);
    EXPECT_DOUBLE_EQ(c.cstates[1].powerWatts, 1.21);
    EXPECT_EQ(c.cstates[1].exitLatency, 2 * kUs);
    EXPECT_EQ(c.cstates[3].exitLatency, 133 * kUs); // CC6, paper Sec. 3.1
}

TEST(Core, StartsActive)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    auto core = makeCore(s, m);
    EXPECT_TRUE(core->isActive());
    EXPECT_EQ(core->cstate(), CState::CC0);
    EXPECT_FALSE(core->inCc1().read());
}

TEST(Core, ReleaseEntersCc1AfterEntryLatency)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    auto core = makeCore(s, m);
    core->release();
    EXPECT_EQ(core->phase(), Core::Phase::Entering);
    s.runUntil(1 * kUs); // entry = exit/4 = 500 ns
    EXPECT_EQ(core->phase(), Core::Phase::Idle);
    EXPECT_EQ(core->cstate(), CState::CC1);
    EXPECT_TRUE(core->inCc1().read());
}

TEST(Core, WakeFromCc1TakesExitLatency)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    auto core = makeCore(s, m);
    core->release();
    s.runUntil(10 * kUs);
    sim::Tick woke_at = -1;
    core->requestWake([&] { woke_at = s.now(); });
    // InCC1 must drop immediately (concurrent package exit).
    EXPECT_FALSE(core->inCc1().read());
    s.runAll();
    EXPECT_EQ(woke_at, 10 * kUs + 2 * kUs);
    EXPECT_TRUE(core->isActive());
    EXPECT_EQ(core->wakeups(), 1u);
}

TEST(Core, WakeWhenActiveIsSynchronous)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    auto core = makeCore(s, m);
    bool called = false;
    core->requestWake([&] { called = true; });
    EXPECT_TRUE(called);
}

TEST(Core, WakeDuringEntryTurnsAround)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    auto core = makeCore(s, m);
    core->release();
    // Interrupt mid-entry (entry is 500 ns).
    s.runUntil(200 * sim::kNs);
    sim::Tick woke_at = -1;
    core->requestWake([&] { woke_at = s.now(); });
    s.runAll();
    // Completes entry (at 500 ns) then exits (2 µs).
    EXPECT_EQ(woke_at, 500 * sim::kNs + 2 * kUs);
    EXPECT_TRUE(core->isActive());
}

TEST(Core, CoalescesConcurrentWakeRequests)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    auto core = makeCore(s, m);
    core->release();
    s.runUntil(10 * kUs);
    int calls = 0;
    core->requestWake([&] { ++calls; });
    core->requestWake([&] { ++calls; });
    s.runAll();
    EXPECT_EQ(calls, 2);
    EXPECT_EQ(core->wakeups(), 1u);
}

TEST(Core, LadderPromotionToCc6)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    auto core = makeCore(s, m, CStateMask::allEnabled(), 20 * kUs,
                         100 * kUs);
    core->release();
    s.runUntil(10 * kUs);
    EXPECT_EQ(core->cstate(), CState::CC1);
    s.runUntil(40 * kUs);
    EXPECT_EQ(core->cstate(), CState::CC1E);
    s.runUntil(200 * kUs);
    EXPECT_EQ(core->cstate(), CState::CC6);
    EXPECT_TRUE(core->inCc6().read());
    EXPECT_TRUE(core->inCc1().read()); // CC1-or-deeper
}

TEST(Core, NoPromotionWhenMaskShallow)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    auto core = makeCore(s, m, CStateMask::shallowOnly());
    core->release();
    s.runUntil(10 * sim::kMs);
    EXPECT_EQ(core->cstate(), CState::CC1);
}

TEST(Core, Cc6WakeTakes133us)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    auto core = makeCore(s, m, CStateMask::allEnabled(), 10 * kUs,
                         10 * kUs);
    core->release();
    s.runUntil(500 * kUs);
    ASSERT_EQ(core->cstate(), CState::CC6);
    const sim::Tick t0 = s.now();
    sim::Tick woke_at = -1;
    core->requestWake([&] { woke_at = s.now(); });
    s.runAll();
    EXPECT_EQ(woke_at, t0 + 133 * kUs);
}

TEST(Core, ResidencyTracksStates)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    auto core = makeCore(s, m);
    core->release();
    s.runUntil(1 * sim::kMs);
    const auto &r = core->residency();
    const double cc1 = r.residency(static_cast<std::size_t>(CState::CC1),
                                   s.now());
    EXPECT_GT(cc1, 0.99 * (1.0 - 0.0005)); // all but the 500 ns entry
}

TEST(Core, PowerDropsInCc1)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    auto core = makeCore(s, m);
    EXPECT_NEAR(m.planePower(power::Plane::Package), 5.30, 1e-9);
    core->release();
    s.runUntil(10 * kUs);
    EXPECT_NEAR(m.planePower(power::Plane::Package), 1.21, 1e-9);
}

TEST(Core, EnergyAccountsWakeTransitionAtActivePower)
{
    sim::Simulation s;
    power::EnergyMeter m(s);
    auto core = makeCore(s, m);
    core->release();
    s.runUntil(100 * kUs);
    const double before = m.planeEnergy(power::Plane::Package);
    core->requestWake(nullptr);
    s.runAll(); // 2 µs exit at 5.30 W
    const double delta = m.planeEnergy(power::Plane::Package) - before;
    EXPECT_NEAR(delta, 5.30 * 2e-6, 1e-9);
}

TEST(LadderGovernor, PromotionSequence)
{
    LadderGovernor::Config cfg;
    cfg.mask = CStateMask::allEnabled();
    cfg.cc1ToCc1e = 10 * kUs;
    cfg.cc1eToCc6 = 50 * kUs;
    LadderGovernor g(cfg);
    EXPECT_EQ(g.initialState(), CState::CC1);
    CState next;
    EXPECT_EQ(g.promoteAfter(CState::CC1, next), 10 * kUs);
    EXPECT_EQ(next, CState::CC1E);
    EXPECT_EQ(g.promoteAfter(CState::CC1E, next), 50 * kUs);
    EXPECT_EQ(next, CState::CC6);
    EXPECT_EQ(g.promoteAfter(CState::CC6, next), sim::kTickNever);
}

TEST(LadderGovernor, SkipsDisabledCc1e)
{
    LadderGovernor::Config cfg;
    cfg.mask = CStateMask{{true, true, false, true}};
    cfg.cc1ToCc1e = 10 * kUs;
    cfg.cc1eToCc6 = 50 * kUs;
    LadderGovernor g(cfg);
    CState next;
    EXPECT_EQ(g.promoteAfter(CState::CC1, next), 60 * kUs);
    EXPECT_EQ(next, CState::CC6);
}

TEST(LadderGovernor, ShallowMaskNeverPromotes)
{
    LadderGovernor g(LadderGovernor::Config{});
    CState next;
    EXPECT_EQ(g.promoteAfter(CState::CC1, next), sim::kTickNever);
}

TEST(MenuGovernor, PicksDeepestFittingState)
{
    MenuGovernor::Config cfg;
    cfg.mask = CStateMask::allEnabled();
    const auto core_cfg = CoreConfig::skxDefaults();
    for (std::size_t i = 0; i < kNumCStates; ++i)
        cfg.params[i] = core_cfg.cstates[i];
    cfg.initialPrediction = 1 * sim::kMs; // > CC6 target residency
    MenuGovernor g(cfg);
    EXPECT_EQ(g.initialState(), CState::CC6);
}

TEST(MenuGovernor, ShortPredictionStaysShallow)
{
    MenuGovernor::Config cfg;
    cfg.mask = CStateMask::allEnabled();
    const auto core_cfg = CoreConfig::skxDefaults();
    for (std::size_t i = 0; i < kNumCStates; ++i)
        cfg.params[i] = core_cfg.cstates[i];
    cfg.initialPrediction = 5 * kUs;
    MenuGovernor g(cfg);
    EXPECT_EQ(g.initialState(), CState::CC1);
}

TEST(MenuGovernor, EwmaAdapts)
{
    MenuGovernor::Config cfg;
    cfg.mask = CStateMask::allEnabled();
    cfg.initialPrediction = 1 * sim::kMs;
    cfg.ewmaAlpha = 0.5;
    MenuGovernor g(cfg);
    for (int i = 0; i < 20; ++i)
        g.recordIdle(10 * kUs);
    EXPECT_LT(g.predictedIdle(), 11 * kUs);
    EXPECT_GE(g.predictedIdle(), 10 * kUs);
}

TEST(CStateMask, DeepestHelper)
{
    EXPECT_EQ(CStateMask::shallowOnly().deepest(), CState::CC1);
    EXPECT_EQ(CStateMask::allEnabled().deepest(), CState::CC6);
    const CStateMask m{{true, true, true, false}};
    EXPECT_EQ(m.deepest(), CState::CC1E);
}

} // namespace
} // namespace apc::cpu
