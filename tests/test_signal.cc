/**
 * @file
 * Unit tests for the wire/signal model (sim/signal.h).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/signal.h"

namespace apc::sim {
namespace {

TEST(Signal, InitialValueAndName)
{
    Simulation s;
    Signal w(s, "wire", false);
    EXPECT_FALSE(w.read());
    EXPECT_EQ(w.name(), "wire");
    Signal w2(s, "wire2", true);
    EXPECT_TRUE(w2.read());
}

TEST(Signal, WriteNotifiesOnEdgeOnly)
{
    Simulation s;
    Signal w(s, "w");
    int edges = 0;
    w.subscribe([&](bool) { ++edges; });
    w.write(true);
    w.write(true); // no edge
    w.write(false);
    EXPECT_EQ(edges, 2);
    EXPECT_EQ(w.risingEdges(), 1u);
    EXPECT_EQ(w.fallingEdges(), 1u);
}

TEST(Signal, ObserverReceivesNewLevel)
{
    Simulation s;
    Signal w(s, "w");
    std::vector<bool> seen;
    w.subscribe([&](bool v) { seen.push_back(v); });
    w.set();
    w.clear();
    EXPECT_EQ(seen, (std::vector<bool>{true, false}));
}

TEST(Signal, Unsubscribe)
{
    Simulation s;
    Signal w(s, "w");
    int calls = 0;
    auto id = w.subscribe([&](bool) { ++calls; });
    w.set();
    w.unsubscribe(id);
    w.clear();
    EXPECT_EQ(calls, 1);
}

// Regression: subscribe() during dispatch used to push_back into the
// observer vector, which could reallocate the storage of the inline
// callable currently executing (heap-use-after-free under ASan). The
// subscribing observer must still be able to read its captures after
// growing the list by far more than any vector growth factor.
TEST(Signal, SubscribeManyDuringDispatchIsSafe)
{
    Simulation s;
    Signal w(s, "w");
    int late_calls = 0;
    std::uint64_t captured = 0xfeedface;
    std::uint64_t seen = 0;
    w.subscribe([&](bool) {
        for (int i = 0; i < 100; ++i)
            w.subscribe([&](bool) { ++late_calls; });
        seen = captured; // would read freed memory pre-fix
    });
    w.set();
    EXPECT_EQ(seen, 0xfeedfaceu);
    // The 100 mid-dispatch subscribers missed the edge being dispatched…
    EXPECT_EQ(late_calls, 0);
    // …but are merged once dispatch unwinds and see the next edge.
    w.clear();
    EXPECT_EQ(late_calls, 100);
}

TEST(Signal, SubscribeThenUnsubscribeDuringDispatchNeverFires)
{
    Simulation s;
    Signal w(s, "w");
    int calls = 0;
    w.subscribe([&](bool) {
        auto id = w.subscribe([&](bool) { ++calls; });
        w.unsubscribe(id); // still parked in pendingAdds_
    });
    w.set();
    w.clear();
    EXPECT_EQ(calls, 0);
}

// Documents the dispatch semantics (changed from the old copy-based
// dispatch): an observer unsubscribed by an earlier peer in the same
// dispatch does not receive the in-flight edge.
TEST(Signal, PeerUnsubscribedDuringDispatchSkipsInFlightEdge)
{
    Simulation s;
    Signal w(s, "w");
    int peer_calls = 0;
    std::uint64_t peer_id = 0;
    w.subscribe([&](bool) { w.unsubscribe(peer_id); });
    peer_id = w.subscribe([&](bool) { ++peer_calls; });
    w.set();
    EXPECT_EQ(peer_calls, 0);
    w.clear();
    EXPECT_EQ(peer_calls, 0);
}

TEST(Signal, SelfUnsubscribeDuringDispatch)
{
    Simulation s;
    Signal w(s, "w");
    int calls = 0;
    std::uint64_t id = 0;
    id = w.subscribe([&](bool) {
        ++calls;
        w.unsubscribe(id); // pll_farm's one-shot pattern
    });
    int other = 0;
    w.subscribe([&](bool) { ++other; });
    w.set();
    w.clear();
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(other, 2);
}

TEST(Signal, WriteAfterAppliesAtDelay)
{
    Simulation s;
    Signal w(s, "w");
    Tick seen_at = -1;
    w.subscribe([&](bool v) {
        if (v)
            seen_at = s.now();
    });
    w.writeAfter(5 * kNs, true);
    EXPECT_FALSE(w.read()); // not yet
    s.runAll();
    EXPECT_TRUE(w.read());
    EXPECT_EQ(seen_at, 5 * kNs);
}

TEST(Signal, LastWriteWinsOverInFlightDelayed)
{
    Simulation s;
    Signal w(s, "w");
    w.writeAfter(10 * kNs, true);
    // A newer immediate write supersedes the scheduled one.
    w.write(false);
    s.runAll();
    EXPECT_FALSE(w.read());
}

TEST(Signal, NewerDelayedWriteSupersedesOlder)
{
    Simulation s;
    Signal w(s, "w");
    w.writeAfter(10 * kNs, true);
    w.writeAfter(2 * kNs, false); // supersedes; stays false
    s.runAll();
    EXPECT_FALSE(w.read());
    EXPECT_EQ(w.risingEdges(), 0u);
}

TEST(Signal, ZeroDelayWriteAfterIsImmediate)
{
    Simulation s;
    Signal w(s, "w");
    w.writeAfter(0, true);
    EXPECT_TRUE(w.read());
}

TEST(AndTree, EmptyTreeIsFalse)
{
    Simulation s;
    AndTree t(s, "and", 0);
    EXPECT_FALSE(t.combinational());
    EXPECT_FALSE(t.output().read());
}

TEST(AndTree, OutputRisesWhenAllInputsHigh)
{
    Simulation s;
    Signal a(s, "a"), b(s, "b"), c(s, "c");
    AndTree t(s, "and", 0);
    t.addInput(a);
    t.addInput(b);
    t.addInput(c);
    a.set();
    b.set();
    s.runAll();
    EXPECT_FALSE(t.output().read());
    c.set();
    s.runAll();
    EXPECT_TRUE(t.output().read());
}

TEST(AndTree, OutputFallsWhenAnyInputDrops)
{
    Simulation s;
    Signal a(s, "a", true), b(s, "b", true);
    AndTree t(s, "and", 0);
    t.addInput(a);
    t.addInput(b);
    s.runAll();
    EXPECT_TRUE(t.output().read());
    a.clear();
    s.runAll();
    EXPECT_FALSE(t.output().read());
}

TEST(AndTree, PropagationDelayApplies)
{
    Simulation s;
    Signal a(s, "a"), b(s, "b");
    AndTree t(s, "and", 2 * kNs);
    t.addInput(a);
    t.addInput(b);
    Tick rise_at = -1;
    t.output().subscribe([&](bool v) {
        if (v)
            rise_at = s.now();
    });
    s.runUntil(100 * kNs);
    a.set();
    b.set();
    s.runAll();
    EXPECT_EQ(rise_at, 102 * kNs);
}

TEST(AndTree, GlitchShorterThanDelayIsSwallowed)
{
    Simulation s;
    Signal a(s, "a", true), b(s, "b", true);
    AndTree t(s, "and", 2 * kNs);
    t.addInput(a);
    t.addInput(b);
    s.runAll();
    ASSERT_TRUE(t.output().read());
    // Drop and re-raise within the propagation delay: last-change-wins
    // means the output never falls.
    int falls = 0;
    t.output().subscribe([&](bool v) {
        if (!v)
            ++falls;
    });
    a.clear();
    a.set();
    s.runAll();
    EXPECT_TRUE(t.output().read());
    EXPECT_EQ(falls, 0);
}

TEST(AndTree, AlreadyHighInputsReflectedAtAttach)
{
    Simulation s;
    Signal a(s, "a", true), b(s, "b", true);
    AndTree t(s, "and", 0);
    t.addInput(a);
    t.addInput(b);
    s.runAll();
    EXPECT_TRUE(t.output().read());
}

} // namespace
} // namespace apc::sim
