/**
 * @file
 * Tests for the APMU / PC1A flow (core/apmu.h) — the paper's central
 * contribution — on the composed Cpc1a SoC: entry conditions, shallow
 * states reached, nanosecond transition latencies, wake paths, and the
 * Table 1 PC1A power level.
 */

#include <gtest/gtest.h>

#include "core/apmu.h"
#include "soc/soc.h"

namespace apc::core {
namespace {

using sim::kMs;
using sim::kNs;
using sim::kUs;

struct ApcFixture
{
    sim::Simulation s;
    soc::SkxConfig cfg;
    std::unique_ptr<soc::Soc> soc;

    explicit ApcFixture(std::function<void(soc::SkxConfig &)> tweak = {})
    {
        cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cpc1a);
        if (tweak)
            tweak(cfg);
        soc = std::make_unique<soc::Soc>(s, cfg,
                                         soc::PackagePolicy::Cpc1a);
    }

    void
    allIdle()
    {
        for (std::size_t i = 0; i < soc->numCores(); ++i)
            soc->core(i).release();
    }

    Apmu &apmu() { return *soc->apmu(); }
};

TEST(ApmuPc1a, SocBuildsApmuOnlyForCpc1a)
{
    ApcFixture f;
    EXPECT_NE(f.soc->apmu(), nullptr);

    sim::Simulation s2;
    auto c2 = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cshallow);
    soc::Soc other(s2, c2, soc::PackagePolicy::Cshallow);
    EXPECT_EQ(other.apmu(), nullptr);
}

TEST(ApmuPc1a, EntersPc1aOnceAllCoresCc1)
{
    ApcFixture f;
    f.allIdle();
    f.s.runUntil(10 * kUs);
    EXPECT_EQ(f.apmu().state(), Apmu::State::Pc1a);
    EXPECT_TRUE(f.apmu().inPc1a().read());
    EXPECT_EQ(f.soc->pkgState(), soc::PkgState::Pc1a);
    EXPECT_EQ(f.apmu().pc1aEntries(), 1u);
}

TEST(ApmuPc1a, Table2StatesReached)
{
    // Table 2 row PC1A: L3 retention, PLLs on, PCIe/DMI L0s, UPI L0p,
    // DRAM CKE off.
    ApcFixture f;
    f.allIdle();
    f.s.runUntil(10 * kUs);
    EXPECT_DOUBLE_EQ(f.soc->clm().voltage(), 0.5);
    EXPECT_FALSE(f.soc->clm().clockTree().running());
    EXPECT_TRUE(f.soc->plls().allLocked());
    for (std::size_t i = 0; i < f.soc->numLinks(); ++i) {
        const auto st = f.soc->link(i).state();
        EXPECT_TRUE(st == io::LState::L0s || st == io::LState::L0p);
    }
    for (std::size_t i = 0; i < f.soc->numMcs(); ++i)
        EXPECT_EQ(f.soc->mc(i).state(), dram::McState::CkeOff);
}

TEST(ApmuPc1a, PowerMatchesTable1)
{
    ApcFixture f;
    f.allIdle();
    f.s.runUntil(10 * kUs);
    // Paper Table 1: PC1A = 27.5 W SoC + 1.6 W DRAM.
    EXPECT_NEAR(f.soc->meter().planePower(power::Plane::Package), 27.5,
                0.3);
    EXPECT_NEAR(f.soc->meter().planePower(power::Plane::Dram), 1.6,
                0.05);
}

TEST(ApmuPc1a, EntryLatencyIsNanoseconds)
{
    // Paper Sec. 5.5.1: ~18 ns of blocking work.
    ApcFixture f;
    f.allIdle();
    f.s.runUntil(10 * kUs);
    EXPECT_GT(f.apmu().entryLatencyNs().mean(), 0.0);
    EXPECT_LE(f.apmu().entryLatencyNs().max(), 30.0);
}

TEST(ApmuPc1a, IoWakeExitBoundedBy200ns)
{
    ApcFixture f;
    f.allIdle();
    f.s.runUntil(10 * kUs);
    ASSERT_EQ(f.apmu().state(), Apmu::State::Pc1a);

    bool delivered = false;
    f.soc->nic().transfer(0, [&] { delivered = true; });
    f.s.runUntil(11 * kUs);
    EXPECT_TRUE(delivered);
    EXPECT_EQ(f.apmu().lastWakeReason(), Apmu::WakeReason::IoTraffic);
    // Paper Sec. 5.5.2: exit <= 150 ns (we allow the couple of extra
    // FSM cycles), worst case entry+exit <= 200 ns.
    EXPECT_LE(f.apmu().exitLatencyNs().max(), 170.0);
    EXPECT_LE(f.apmu().entryLatencyNs().max() +
                  f.apmu().exitLatencyNs().max(),
              200.0);
}

TEST(ApmuPc1a, FabricReopensWithinExitLatency)
{
    ApcFixture f;
    f.allIdle();
    f.s.runUntil(10 * kUs);
    ASSERT_FALSE(f.soc->fabricReady());
    const sim::Tick t0 = f.s.now();
    sim::Tick ready_at = -1;
    f.soc->nic().transfer(0, [&] {
        f.soc->whenFabricReady([&] { ready_at = f.s.now(); });
    });
    f.s.runUntil(11 * kUs);
    ASSERT_GE(ready_at, 0);
    EXPECT_LE(ready_at - t0, 250 * kNs); // link exit ∥ package exit
}

TEST(ApmuPc1a, CoreWakeGoesToPc0AndDisallowsL0s)
{
    ApcFixture f;
    f.allIdle();
    f.s.runUntil(10 * kUs);
    bool woke = false;
    f.soc->core(2).requestWake([&] { woke = true; });
    f.s.runUntil(20 * kUs);
    EXPECT_TRUE(woke);
    EXPECT_EQ(f.apmu().state(), Apmu::State::Pc0);
    EXPECT_EQ(f.apmu().lastWakeReason(), Apmu::WakeReason::CoreInterrupt);
    // Links are brought back to full L0.
    for (std::size_t i = 0; i < f.soc->numLinks(); ++i)
        EXPECT_EQ(f.soc->link(i).state(), io::LState::L0);
    EXPECT_TRUE(f.soc->fabricReady());
}

TEST(ApmuPc1a, ReentersAfterCoreWake)
{
    ApcFixture f;
    f.allIdle();
    f.s.runUntil(10 * kUs);
    f.soc->core(0).requestWake([&] {
        // Briefly active, then idle again.
        f.s.after(5 * kUs, [&] { f.soc->core(0).release(); });
    });
    f.s.runUntil(100 * kUs);
    EXPECT_EQ(f.apmu().state(), Apmu::State::Pc1a);
    EXPECT_EQ(f.apmu().pc1aEntries(), 2u);
}

TEST(ApmuPc1a, ReentersAfterIoOnlyWake)
{
    ApcFixture f;
    f.allIdle();
    f.s.runUntil(10 * kUs);
    // UPI snoop-like traffic that involves no core.
    f.soc->link(4).transfer(100 * kNs, nullptr);
    f.s.runUntil(100 * kUs);
    EXPECT_EQ(f.apmu().state(), Apmu::State::Pc1a);
    EXPECT_GE(f.apmu().pc1aEntries(), 2u);
}

TEST(ApmuPc1a, WakeDuringEntryTurnsAround)
{
    ApcFixture f;
    f.allIdle();
    // Let the cores reach CC1 (~500 ns entry) and the links take the
    // 16 ns idle window; interrupt right around the APMU entry flow.
    f.s.runUntil(550 * kNs);
    f.soc->core(1).requestWake(nullptr);
    f.s.runUntil(50 * kUs);
    EXPECT_EQ(f.apmu().state(), Apmu::State::Pc0);
    EXPECT_TRUE(f.soc->fabricReady());
}

TEST(ApmuPc1a, GpmuWakeEventExitsAndReenters)
{
    ApcFixture f;
    f.allIdle();
    f.s.runUntil(10 * kUs);
    ASSERT_EQ(f.apmu().state(), Apmu::State::Pc1a);
    f.soc->gpmu().wakeUp().write(true);
    f.soc->gpmu().wakeUp().write(false);
    f.s.runUntil(11 * kUs);
    EXPECT_EQ(f.apmu().lastWakeReason(), Apmu::WakeReason::GpmuEvent);
    // Nothing else woke, so the system drops straight back into PC1A.
    f.s.runUntil(20 * kUs);
    EXPECT_EQ(f.apmu().state(), Apmu::State::Pc1a);
    EXPECT_GE(f.apmu().pc1aEntries(), 2u);
}

TEST(ApmuPc1a, SpeedupVsPc6Exceeds250x)
{
    ApcFixture f;
    f.allIdle();
    f.s.runUntil(10 * kUs);
    f.soc->nic().transfer(0, nullptr);
    f.s.runUntil(20 * kUs);
    const double pc1a_total_ns = f.apmu().entryLatencyNs().max() +
        f.apmu().exitLatencyNs().max();
    // Paper: >250x faster than PC6's >50 µs.
    EXPECT_GT(50000.0 / pc1a_total_ns, 250.0);
}

// --- Ablations (DESIGN.md Sec. 5) ---

TEST(ApmuAblation, PllsOffMakesExitMicroseconds)
{
    ApcFixture f([](soc::SkxConfig &c) { c.apc.keepPllsOn = false; });
    f.allIdle();
    f.s.runUntil(10 * kUs);
    ASSERT_EQ(f.apmu().state(), Apmu::State::Pc1a);
    EXPECT_FALSE(f.soc->plls().allLocked());
    f.soc->nic().transfer(0, nullptr);
    f.s.runUntil(100 * kUs);
    // Exit now pays the 5 µs relock: >25x the keep-on design.
    EXPECT_GT(f.apmu().exitLatencyNs().max(), 5000.0);
}

TEST(ApmuAblation, SelfRefreshInsteadOfCkeOff)
{
    ApcFixture f([](soc::SkxConfig &c) { c.apc.useCkeOff = false; });
    f.allIdle();
    f.s.runUntil(50 * kUs);
    ASSERT_EQ(f.apmu().state(), Apmu::State::Pc1a);
    for (std::size_t i = 0; i < f.soc->numMcs(); ++i)
        EXPECT_EQ(f.soc->mc(i).state(), dram::McState::SelfRefresh);
    // Lower DRAM power than CKE-off...
    EXPECT_NEAR(f.soc->meter().planePower(power::Plane::Dram), 0.51,
                0.05);
    // ...but µs-scale exit.
    f.soc->nic().transfer(0, nullptr);
    f.s.runUntil(200 * kUs);
    EXPECT_GT(f.apmu().exitLatencyNs().max(), 9000.0);
}

TEST(ApmuAblation, NoClmrKeepsClmHot)
{
    ApcFixture f([](soc::SkxConfig &c) { c.apc.useClmr = false; });
    f.allIdle();
    f.s.runUntil(10 * kUs);
    ASSERT_EQ(f.apmu().state(), Apmu::State::Pc1a);
    EXPECT_DOUBLE_EQ(f.soc->clm().voltage(), 0.8);
    EXPECT_TRUE(f.soc->clm().clockTree().running());
    // Power is ~ the CLMR saving higher than full APC (19.84 - 8.31 +
    // dynamic): 27.5 + 11.5 ≈ 39 W.
    EXPECT_NEAR(f.soc->meter().planePower(power::Plane::Package), 39.0,
                0.5);
}

TEST(ApmuAblation, L1LinksInsteadOfShallow)
{
    ApcFixture f([](soc::SkxConfig &c) {
        c.apc.useShallowLinks = false;
    });
    f.allIdle();
    f.s.runUntil(100 * kUs); // L1 entry is µs-scale
    ASSERT_EQ(f.apmu().state(), Apmu::State::Pc1a);
    for (std::size_t i = 0; i < f.soc->numLinks(); ++i)
        EXPECT_EQ(f.soc->link(i).state(), io::LState::L1);
    // Deeper link state: lower power than the real PC1A.
    EXPECT_LT(f.soc->meter().planePower(power::Plane::Package), 27.0);
}

} // namespace
} // namespace apc::core
