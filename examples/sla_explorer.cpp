/**
 * @file
 * SLA explorer: for each power-management policy, find the highest
 * Memcached load that still meets a p99 latency SLA, and report the
 * energy per million requests at that operating point. This is the
 * operator's view of the paper's trade-off: Cdeep saves power but blows
 * the tail; Cshallow protects the tail but wastes idle power; CPC1A
 * gives (nearly) both.
 *
 *   ./example_sla_explorer [p99_sla_us]   (default 250 us)
 */

#include <cstdio>
#include <cstdlib>

#include "server/server_sim.h"

using namespace apc;

namespace {

server::ServerResult
measure(soc::PackagePolicy policy, double qps)
{
    server::ServerConfig cfg;
    cfg.policy = policy;
    cfg.workload = workload::WorkloadConfig::memcachedEtc(qps);
    cfg.duration = 200 * sim::kMs;
    server::ServerSim sim(std::move(cfg));
    return sim.run();
}

} // namespace

int
main(int argc, char **argv)
{
    const double sla_us = argc > 1 ? std::atof(argv[1]) : 250.0;
    std::printf("p99 SLA: %.0f us (end-to-end, network ~117 us)\n\n",
                sla_us);

    const soc::PackagePolicy policies[] = {soc::PackagePolicy::Cshallow,
                                           soc::PackagePolicy::Cdeep,
                                           soc::PackagePolicy::Cpc1a};
    const double ladder[] = {4e3,  10e3, 25e3, 50e3, 100e3,
                             150e3, 200e3, 300e3, 400e3, 600e3};

    std::printf("%-10s %-14s %-10s %-10s %-14s\n", "Policy",
                "max QPS in SLA", "p99 (us)", "power W",
                "J per 1M req");
    std::printf("------------------------------------------------------"
                "-----\n");
    for (const auto policy : policies) {
        double best_qps = 0, best_p99 = 0, best_w = 0;
        for (const double qps : ladder) {
            const auto r = measure(policy, qps);
            if (r.p99LatencyUs > sla_us)
                break;
            best_qps = qps;
            best_p99 = r.p99LatencyUs;
            best_w = r.totalPowerW();
        }
        if (best_qps == 0) {
            std::printf("%-10s fails the SLA even at the lowest load\n",
                        soc::policyName(policy));
            continue;
        }
        std::printf("%-10s %-14.0f %-10.1f %-10.1f %-14.1f\n",
                    soc::policyName(policy), best_qps, best_p99, best_w,
                    best_w / best_qps * 1e6);
    }

    std::printf("\nReading: C_PC1A sustains the same SLA load as "
                "Cshallow at lower power; Cdeep loses SLA headroom to "
                "deep-C-state wake latency.\n");
    return 0;
}
