/**
 * @file
 * Fleet demo: an 8-server cluster behind a load balancer, driven by
 * CDF-table request demands with a diurnal load curve and a slice of
 * fanout (incast) traffic — the datacenter-scale view of the paper's
 * package C-state argument in ~100 lines.
 *
 *   ./fleet_demo
 *
 * Observability knobs (all optional):
 *   APC_TRACE_OUT=<path>    enable span tracing on the PowerAwarePacking
 *                           run and export a Perfetto/Chrome trace JSON
 *   APC_METRICS_OUT=<path>  enable epoch metrics sampling on the same
 *                           run and export the time series as CSV
 *   APC_ATTR_OUT=<path>     enable tail-latency attribution on the same
 *                           run and export the blame report as JSON
 *   APC_HEALTH_OUT=<path>   enable SLO burn-rate alerting + the
 *                           invariant auditor on the same run and export
 *                           the alert log as JSON
 *   APC_BENCH_DURATION_MS=<ms>  shrink the simulated window (CI smoke)
 */

#include <cstdio>
#include <cstdlib>

#include "fleet/fleet_sim.h"

using namespace apc;

namespace {

fleet::FleetConfig
makeConfig(fleet::DispatchKind kind)
{
    fleet::FleetConfig fc;
    fc.numServers = 8;
    fc.policy = soc::PackagePolicy::Cpc1a;
    fc.workload = workload::WorkloadConfig::kafka(0);
    fc.dispatch = kind;

    // Service demand from a CDF table (TrafficGenerator idiom): mostly
    // ~60 µs events with a heavy 1 ms tail. In a real experiment this
    // comes from CdfTable::fromFile("web_search.txt").
    fc.traffic.serviceCdf = workload::CdfTable::fromString(
        "# service_us  cdf%\n"
        "10   0\n"
        "50   50\n"
        "100  90\n"
        "400  99\n"
        "1000 100\n");
    fc.traffic.cdfUnit = static_cast<double>(sim::kUs);

    // Aggregate ~12% fleet load at the diurnal mean, swinging 0.4x to
    // 1.6x across a (compressed) day.
    fc.traffic.qps = 55000.0;
    fc.traffic.diurnal =
        fleet::DiurnalProfile::dayNight(200 * sim::kMs, 0.4, 1.6);

    // 5% of requests fan out to 8 replicas; completion waits for the
    // slowest (incast tail amplification).
    fc.traffic.fanout = {0.05, 8};

    fc.sloUs = 2000.0;
    fc.duration = 400 * sim::kMs; // two diurnal cycles
    if (const char *env = std::getenv("APC_BENCH_DURATION_MS"))
        if (const auto ms = std::atoll(env); ms > 0)
            fc.duration = ms * sim::kMs;
    return fc;
}

void
report(const char *name, const fleet::FleetReport &r)
{
    std::printf("%-20s %7.1f W  %8.5f J/req  p50 %6.0f us  p99 %6.0f us"
                "  p999 %6.0f us  SLO viol %5.2f%%  PC1A %5.1f%%\n",
                name, r.totalPowerW(), r.joulesPerRequest,
                r.p50LatencyUs, r.p99LatencyUs, r.p999LatencyUs,
                100.0 * r.sloViolationFraction,
                100.0 * r.pc1aResidency());
}

} // namespace

int
main()
{
    std::printf("Fleet demo: 8 x SKX servers (C_PC1A), CDF service "
                "demands, diurnal load, 5%% fanout-8 traffic\n\n");

    const fleet::DispatchKind kinds[] = {
        fleet::DispatchKind::RoundRobin,
        fleet::DispatchKind::LeastOutstanding,
        fleet::DispatchKind::PowerAwarePacking,
    };

    const char *trace_out = std::getenv("APC_TRACE_OUT");
    const char *metrics_out = std::getenv("APC_METRICS_OUT");
    const char *attr_out = std::getenv("APC_ATTR_OUT");
    const char *health_out = std::getenv("APC_HEALTH_OUT");

    bool obs_ok = true;
    fleet::FleetReport reports[3];
    for (int i = 0; i < 3; ++i) {
        auto fc = makeConfig(kinds[i]);
        // Observe the packing run: it is the headline policy and shows
        // the richest trace (cap actuations, packed vs parked servers).
        const bool observed =
            kinds[i] == fleet::DispatchKind::PowerAwarePacking;
        fc.trace.enabled = observed && trace_out && *trace_out;
        fc.metrics.enabled = observed && metrics_out && *metrics_out;
        fc.attribution.enabled = observed && attr_out && *attr_out;
        fc.health.enabled = observed && health_out && *health_out;
        if (fc.health.enabled)
            fc.health.slo.latencyThresholdUs = fc.sloUs;
        if (fc.attribution.enabled)
            // Segment spans are ~10 records per request; give the rings
            // headroom so the spine doesn't wrap over a full demo run.
            fc.trace.ringCapacity = std::size_t{1} << 22;
        fleet::FleetSim fleet(fc);
        reports[i] = fleet.run();
        report(fleet::dispatchName(kinds[i]), reports[i]);
        if (fc.trace.enabled) {
            if (fleet.writeTrace(trace_out))
                std::printf("\nWrote Perfetto trace: %s (%llu events, "
                            "%llu dropped)\n",
                            trace_out,
                            static_cast<unsigned long long>(
                                fleet.tracer()->totalRecorded()),
                            static_cast<unsigned long long>(
                                fleet.tracer()->totalDropped()));
            else {
                std::fprintf(stderr, "error: trace export to %s failed\n",
                             trace_out);
                obs_ok = false;
            }
        }
        if (fc.metrics.enabled) {
            if (fleet.writeMetricsCsv(metrics_out))
                std::printf("Wrote metrics CSV: %s (%zu samples x %zu "
                            "series)\n",
                            metrics_out, fleet.metrics()->numSamples(),
                            fleet.metrics()->numSeries());
            else {
                std::fprintf(stderr,
                             "error: metrics export to %s failed\n",
                             metrics_out);
                obs_ok = false;
            }
        }
        if (fc.attribution.enabled) {
            const obs::LatencyAttribution &la = reports[i].attribution;
            if (la.writeJson(attr_out))
                std::printf("Wrote blame report: %s (%llu requests "
                            "attributed, %llu fanout, tail blame: %s)\n",
                            attr_out,
                            static_cast<unsigned long long>(la.requests),
                            static_cast<unsigned long long>(
                                la.fanoutRequests),
                            obs::segmentName(la.tailDominant()));
            else {
                std::fprintf(stderr,
                             "error: blame export to %s failed\n",
                             attr_out);
                obs_ok = false;
            }
        }
        if (fc.health.enabled) {
            const obs::HealthReport &h = reports[i].health;
            if (fleet.writeAlertsJson(health_out))
                std::printf("Wrote health report: %s (%llu alerts fired, "
                            "%llu resolved, %llu audits / %llu checks, "
                            "%llu violations)\n",
                            health_out,
                            static_cast<unsigned long long>(h.alertsFired),
                            static_cast<unsigned long long>(
                                h.alertsResolved),
                            static_cast<unsigned long long>(h.audits),
                            static_cast<unsigned long long>(h.auditChecks),
                            static_cast<unsigned long long>(
                                h.auditViolations));
            else {
                std::fprintf(stderr,
                             "error: health export to %s failed\n",
                             health_out);
                obs_ok = false;
            }
        }
    }

    const double spread_w = reports[0].totalPowerW();
    const double packed_w = reports[2].totalPowerW();
    std::printf("\nPacking saves %.1f%% fleet power vs round-robin at "
                "this load; per-server breakdown under packing:\n",
                100.0 * (1.0 - packed_w / spread_w));
    for (std::size_t s = 0; s < reports[2].perServer.size(); ++s) {
        const auto &r = reports[2].perServer[s];
        std::printf("  server %zu: %6.1f W, util %5.1f%%, PC1A %5.1f%%, "
                    "%llu reqs\n",
                    s, r.totalPowerW(), 100.0 * r.utilization,
                    100.0 * r.pc1aResidency(),
                    static_cast<unsigned long long>(r.requests));
    }
    return obs_ok ? 0 : 1;
}
