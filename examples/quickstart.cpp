/**
 * @file
 * Quickstart: build the reference Skylake server SoC with AgilePkgC,
 * idle it, watch it enter PC1A, wake it with NIC traffic, and read the
 * RAPL-style power counters — the whole public API in ~80 lines.
 *
 *   ./example_quickstart
 */

#include <cstdio>

#include "soc/soc.h"

using namespace apc;

int
main()
{
    // 1. A simulation context and the Xeon-Silver-4114-like SoC with
    //    the paper's Cpc1a policy (Cshallow baseline + APC).
    sim::Simulation sim;
    const auto cfg = soc::SkxConfig::forPolicy(soc::PackagePolicy::Cpc1a);
    soc::Soc soc(sim, cfg, soc::PackagePolicy::Cpc1a);

    std::printf("SoC: %zu cores, %zu IO links, %zu memory controllers\n",
                soc.numCores(), soc.numLinks(), soc.numMcs());
    std::printf("Active power: %.1f W package + %.1f W DRAM\n",
                soc.meter().planePower(power::Plane::Package),
                soc.meter().planePower(power::Plane::Dram));

    // 2. All cores go idle (enter CC1). The APMU notices, lets the IO
    //    links drop to L0s/L0p, gates the CLM and drops its rails to
    //    retention, and puts DRAM in CKE-off: that's PC1A.
    for (std::size_t i = 0; i < soc.numCores(); ++i)
        soc.core(i).release();
    sim.runUntil(10 * sim::kUs);

    std::printf("\nAfter 10 us of idleness: package state = %s\n",
                soc::pkgStateName(soc.pkgState()));
    std::printf("  CLM voltage %.2f V, clocks %s, DRAM %s, NIC %s\n",
                soc.clm().voltage(),
                soc.clm().clockTree().running() ? "running" : "gated",
                dram::mcStateName(soc.mc(0).state()),
                io::lstateName(soc.nic().state()));
    std::printf("  Power: %.1f W package + %.1f W DRAM (PC0idle would "
                "be 44.0 + 5.5 W)\n",
                soc.meter().planePower(power::Plane::Package),
                soc.meter().planePower(power::Plane::Dram));

    // 3. A request arrives over the NIC. The link wake doubles as the
    //    package wake; the fabric reopens within ~150 ns.
    const sim::Tick t0 = sim.now();
    soc.nic().transfer(200 * sim::kNs, [&] {
        soc.whenFabricReady([&] {
            std::printf("\nNIC packet delivered and fabric open %.0f ns "
                        "after arrival\n",
                        sim::toNanos(sim.now() - t0));
        });
    });
    sim.runUntil(t0 + 5 * sim::kUs);

    // 4. APMU transition statistics.
    const auto *apmu = soc.apmu();
    std::printf("\nPC1A entries: %llu, entry %.0f ns, exit %.0f ns "
                "(paper bound: entry+exit <= 200 ns)\n",
                static_cast<unsigned long long>(apmu->pc1aEntries()),
                apmu->entryLatencyNs().mean(),
                apmu->exitLatencyNs().mean());

    // 5. Energy over the whole run, straight from the RAPL facade.
    std::printf("Total energy so far: %.1f mJ package, %.1f mJ DRAM\n",
                1e3 * soc.rapl().energyJoules(power::Plane::Package),
                1e3 * soc.rapl().energyJoules(power::Plane::Dram));
    return 0;
}
