/**
 * @file
 * Power-capping demo: a 4-server rack riding out a breaker trip.
 *
 * The rack starts fully provisioned (1.0x oversubscription), then at
 * t=150 ms a simulated breaker derates the feed to 60% for 100 ms.
 * The budget allocator re-slices the rack budget every 10 ms; each
 * server's closed-loop controller enforces its slice with idle
 * injection — forced idle windows the package sleeps through in PC1A.
 * The demo prints the allocation timeline around the trip and the
 * fleet-level cost of riding it out.
 *
 *   ./power_cap_demo
 */

#include <cstdio>

#include "fleet/fleet_sim.h"

using namespace apc;

int
main()
{
    std::printf("Power-cap demo: 4 x SKX servers (C_PC1A) at ~25%% "
                "load, breaker trip to 60%% feed at t=150 ms\n\n");

    fleet::FleetConfig fc;
    fc.numServers = 4;
    fc.policy = soc::PackagePolicy::Cpc1a;
    fc.workload = workload::WorkloadConfig::memcachedEtc(0);
    fc.workload.arrivalKind = workload::ArrivalKind::Poisson;
    fc.traffic.arrivalKind = workload::ArrivalKind::Poisson;
    fc.traffic.qps = fc.workload.qpsForUtilization(
        0.25, static_cast<int>(fc.numServers) * 10);
    fc.sloUs = 2000.0;
    fc.warmup = 40 * sim::kMs;
    fc.duration = 300 * sim::kMs;

    // Rack budget: 4 x 62 W nameplate, fully provisioned; the trip
    // derates it to 60% for 100 ms.
    fc.budget.enabled = true;
    fc.budget.oversubscription = 1.0;
    fc.budget.breaker.enabled = true;
    fc.budget.breaker.at = 150 * sim::kMs;
    fc.budget.breaker.duration = 100 * sim::kMs;
    fc.budget.breaker.factor = 0.60;

    // Idle injection: with APC the forced-idle gates cost nanoseconds
    // of transition latency, so capping stays tail-friendly.
    fc.cap.actuator = cap::CapActuator::IdleInject;

    fleet::FleetSim fleet(fc);
    const auto r = fleet.run();

    std::printf("Allocation timeline (10 ms budget epochs):\n");
    std::printf("  %8s %10s %10s %10s\n", "t (ms)", "budget W",
                "demand W", "granted W");
    for (const auto &rec : r.budgetLog) {
        if (rec.at < 120 * sim::kMs || rec.at > 270 * sim::kMs)
            continue;
        const bool tripped = rec.budgetW < r.rackBudgetW;
        std::printf("  %8lld %10.1f %10.1f %10.1f%s\n",
                    static_cast<long long>(rec.at / sim::kMs),
                    rec.budgetW, rec.demandW, rec.allocatedW,
                    rec.emergency ? "  << emergency floors"
                                  : (tripped ? "  << breaker tripped"
                                             : ""));
    }

    std::printf("\nFleet over the full window:\n");
    std::printf("  package power    %7.1f W (rack budget %.1f W, "
                "utilization %.0f%%)\n",
                r.pkgPowerW, r.rackBudgetW,
                100.0 * r.budgetUtilization);
    std::printf("  p50 / p99        %6.0f / %6.0f us (SLO %.0f us, "
                "viol %.2f%%)\n",
                r.p50LatencyUs, r.p99LatencyUs, r.sloUs,
                100.0 * r.sloViolationFraction);
    std::printf("  throttle         %5.1f%% of server-time gated, "
                "perf loss %.1f%% of capacity\n",
                100.0 * r.capThrottleResidency,
                100.0 * r.capPerfLoss);
    std::printf("  cap violations   %llu of %llu settled samples\n",
                static_cast<unsigned long long>(r.capViolations),
                static_cast<unsigned long long>(r.capSamples));
    std::printf("  PC1A residency   %5.1f%% (idle injection puts the "
                "shed watts into the package C-state)\n",
                100.0 * r.pc1aResidency());
    return 0;
}
