/**
 * @file
 * Datacenter scenario: a Memcached caching tier follows a diurnal load
 * curve (the motivation in the paper's Sec. 1 — servers provisioned for
 * peak spend most of the day at 5–20% utilization). This example walks
 * a 24-hour profile, simulates each hour's operating point under
 * Cshallow and CPC1A, and totals the energy both ways.
 *
 *   ./example_diurnal_energy
 */

#include <cstdio>

#include "server/server_sim.h"

using namespace apc;

namespace {

/** One simulated operating point (scaled-down measurement window). */
server::ServerResult
measure(soc::PackagePolicy policy, double qps)
{
    server::ServerConfig cfg;
    cfg.policy = policy;
    cfg.workload = workload::WorkloadConfig::memcachedEtc(qps);
    cfg.duration = 150 * sim::kMs;
    server::ServerSim sim(std::move(cfg));
    return sim.run();
}

} // namespace

int
main()
{
    // A typical user-facing diurnal curve: deep night trough, morning
    // ramp, evening peak — in QPS against the tier's 600K provisioned
    // peak (so even the peak hour sits at moderate utilization).
    const double hourly_qps[24] = {
        12e3, 8e3,  6e3,  4e3,  4e3,  6e3,  12e3, 25e3,
        45e3, 60e3, 70e3, 80e3, 85e3, 80e3, 75e3, 70e3,
        75e3, 85e3, 95e3, 100e3, 90e3, 60e3, 35e3, 20e3};

    std::printf("Hour  QPS    Cshallow W  C_PC1A W  Savings  PC1A res.\n");
    std::printf("----------------------------------------------------\n");
    double base_wh = 0, apc_wh = 0;
    for (int h = 0; h < 24; ++h) {
        const auto base =
            measure(soc::PackagePolicy::Cshallow, hourly_qps[h]);
        const auto apc =
            measure(soc::PackagePolicy::Cpc1a, hourly_qps[h]);
        base_wh += base.totalPowerW();
        apc_wh += apc.totalPowerW();
        std::printf("%02d    %5.0fK  %8.1f    %7.1f   %5.1f%%   %5.1f%%\n",
                    h, hourly_qps[h] / 1000, base.totalPowerW(),
                    apc.totalPowerW(),
                    100.0 * (1.0 - apc.totalPowerW() /
                             base.totalPowerW()),
                    100.0 * apc.pc1aResidency());
    }

    const double savings = 1.0 - apc_wh / base_wh;
    std::printf("\nSoC+DRAM energy per server-day: %.0f Wh -> %.0f Wh "
                "(%.1f%% saved)\n",
                base_wh, apc_wh, 100.0 * savings);
    std::printf("Across a 10,000-server caching tier: %.1f MWh/day "
                "saved, with <0.1%% latency impact.\n",
                10000 * (base_wh - apc_wh) / 1e6);
    return 0;
}
