/**
 * @file
 * SoCWatch-style state tracing: run a short Memcached window on the
 * CPC1A system and emit a CSV timeline of package-state changes and
 * the control wires that drive them (paper Fig. 3/4), using the
 * library's `analysis::TraceRecorder`.
 *
 *   ./example_state_trace > trace.csv
 */

#include <cstdio>

#include "analysis/trace.h"
#include "server/server_sim.h"

using namespace apc;

int
main()
{
    server::ServerConfig cfg;
    cfg.policy = soc::PackagePolicy::Cpc1a;
    cfg.workload = workload::WorkloadConfig::memcachedEtc(20e3);
    cfg.warmup = 0;
    cfg.duration = 3 * sim::kMs;
    server::ServerSim sim(std::move(cfg));

    analysis::TraceRecorder trace(sim.soc(), /*trace_cores=*/false);
    const auto res = sim.run();
    trace.writeCsv(stdout);

    std::fprintf(stderr,
                 "\n%llu requests, %llu PC1A entries, PC1A residency "
                 "%.1f%%, avg power %.1f W, %zu trace events\n",
                 static_cast<unsigned long long>(res.requests),
                 static_cast<unsigned long long>(res.pc1aEntries),
                 100.0 * res.pc1aResidency(), res.totalPowerW(),
                 trace.events().size());
    return 0;
}
